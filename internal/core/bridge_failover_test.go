package core

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"deisago/internal/dask"
	"deisago/internal/ndarray"
	"deisago/internal/taskgraph"
)

// TestFailoverSkipsPausedWorker pins the bridge's failover policy: when
// the preselected worker is dead, the (worker+k) mod N scan must pass
// over live workers paused at their memory watermark and land on the
// next unpaused one, so backpressured workers don't absorb re-routed
// publishes on top of their existing load.
func TestFailoverSkipsPausedWorker(t *testing.T) {
	cluster := testCluster(t, 3)

	// Worker 1 — the first failover candidate after worker 0 — holds a
	// 32-byte block and is squeezed to a 32-byte limit for the whole
	// run, parking it above the 0.8 watermark.
	aux := cluster.NewClient("aux", 1, math.Inf(1))
	if err := aux.Scatter([]dask.ScatterItem{{Key: "ballast", Value: []float64{1, 2, 3, 4}}}, false, 1); err != nil {
		t.Fatal(err)
	}
	cluster.SetWorkerMemoryWindow(1, 32, 0, -1)
	if !cluster.WorkerPaused(1, aux.Now()) {
		t.Fatal("worker 1 should be paused at 32/32 bytes")
	}

	va := &VirtualArray{Name: "G_f", Size: []int{1, 2, 2}, Subsize: []int{1, 2, 2}, TimeDim: 0}
	b := NewBridge(BridgeConfig{Rank: 0, Cluster: cluster, Node: 2,
		HeartbeatInterval: math.Inf(1), Mode: ModeExternal,
		PlaceWorker: func(_ *VirtualArray, _ []int, _ int) int { return 0 }})
	if err := b.DeclareArray(va); err != nil {
		t.Fatal(err)
	}

	var got float64
	var wg sync.WaitGroup
	errs := make(chan error, 2)

	wg.Add(1)
	go func() {
		defer wg.Done()
		d := Connect(cluster, 1)
		set, err := d.GetDeisaArrays()
		if err != nil {
			errs <- err
			return
		}
		da, _ := set.Get("G_f")
		da.SelectAll()
		if _, err := set.ValidateContract(); err != nil {
			errs <- err
			return
		}
		g := taskgraph.New()
		g.AddFn("s", da.Selection().Keys(), func(in []any) (any, error) {
			return in[0].(*ndarray.Array).Sum(), nil
		}, 1e-4)
		futs, err := d.Client().Submit(g, []taskgraph.Key{"s"})
		if err != nil {
			errs <- err
			return
		}
		vals, err := d.Client().Gather(futs)
		if err != nil {
			errs <- err
			return
		}
		got = vals[0].(float64)
	}()

	wg.Add(1)
	go func() {
		defer wg.Done()
		now, err := b.Init(0)
		if err != nil {
			errs <- err
			return
		}
		// The placement target dies before the publish; the failover
		// scan starts at worker 1 (paused) and must settle on worker 2.
		if err := cluster.KillWorker(0, now); err != nil {
			errs <- err
			return
		}
		blk := ndarray.New(1, 2, 2)
		blk.Fill(2)
		if _, _, err := b.Publish("G_f", []int{0, 0, 0}, blk, now); err != nil {
			errs <- err
			return
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got != 8 {
		t.Fatalf("sum = %v, want 8", got)
	}

	stats := cluster.WorkerStatsAll()
	if stats[1].StoreItems != 1 || stats[1].StoreBytes != 32 {
		t.Fatalf("paused worker 1 absorbed the failover: %d items / %d bytes, want only its 32-byte ballast",
			stats[1].StoreItems, stats[1].StoreBytes)
	}
	if stats[2].StoreItems == 0 {
		t.Fatal("worker 2 holds nothing; the failover did not land there")
	}
}

// TestRepublishLostToPausedReplacement covers the compound failure the
// acceptance criteria call out: a published block's worker dies, and at
// republish time the only replacement worker is itself paused at its
// memory watermark. The republish must take the paused worker anyway
// (there is no unpaused candidate), absorb the refusal through the
// retry/backoff loop — which carries the bridge clock past the squeeze
// window — and land the block on the retry.
func TestRepublishLostToPausedReplacement(t *testing.T) {
	cluster := testCluster(t, 2)

	// Worker 1 — the only replacement once worker 0 dies — holds a
	// 32-byte ballast block; a squeeze window installed below (anchored
	// to the publish completion time) parks it above the 0.8 watermark
	// for the first republish attempt.
	aux := cluster.NewClient("aux", 1, math.Inf(1))
	if err := aux.Scatter([]dask.ScatterItem{{Key: "ballast", Value: []float64{1, 2, 3, 4}}}, false, 1); err != nil {
		t.Fatal(err)
	}

	va := &VirtualArray{Name: "G_f", Size: []int{1, 2, 2}, Subsize: []int{1, 2, 2}, TimeDim: 0}
	b := NewBridge(BridgeConfig{Rank: 0, Cluster: cluster, Node: 2,
		HeartbeatInterval: math.Inf(1), Mode: ModeExternal,
		PlaceWorker: func(_ *VirtualArray, _ []int, _ int) int { return 0 }})
	if err := b.DeclareArray(va); err != nil {
		t.Fatal(err)
	}

	var got float64
	var wg sync.WaitGroup
	errs := make(chan error, 2)

	wg.Add(1)
	go func() {
		defer wg.Done()
		d := Connect(cluster, 1)
		set, err := d.GetDeisaArrays()
		if err != nil {
			errs <- err
			return
		}
		da, _ := set.Get("G_f")
		da.SelectAll()
		if _, err := set.ValidateContract(); err != nil {
			errs <- err
			return
		}
		g := taskgraph.New()
		g.AddFn("s", da.Selection().Keys(), func(in []any) (any, error) {
			return in[0].(*ndarray.Array).Sum(), nil
		}, 1e-4)
		futs, err := d.Client().Submit(g, []taskgraph.Key{"s"})
		if err != nil {
			errs <- err
			return
		}
		vals, err := d.Client().Gather(futs)
		if err != nil {
			errs <- err
			return
		}
		got = vals[0].(float64)
	}()

	wg.Add(1)
	go func() {
		defer wg.Done()
		now, err := b.Init(0)
		if err != nil {
			errs <- err
			return
		}
		// First publish lands on the healthy worker 0; the kill then
		// reverts the key to external and RepublishLost must re-send it.
		blk := ndarray.New(1, 2, 2)
		blk.Fill(2)
		sentAt, _, err := b.Publish("G_f", []int{0, 0, 0}, blk, now)
		if err != nil {
			errs <- err
			return
		}
		if err := cluster.KillWorker(0, sentAt); err != nil {
			errs <- err
			return
		}
		// Squeeze the replacement below the block size until well after
		// the republish attempt: even a full spill of the 32-byte
		// ballast cannot fit a 32-byte block under a 16-byte window, so
		// the first republish attempt is refused with ErrWorkerPaused
		// and the retry loop must carry the clock past the window
		// before landing the block.
		cluster.SetWorkerMemoryWindow(1, 16, 0, sentAt+4)
		if !cluster.WorkerPaused(1, sentAt) {
			errs <- fmt.Errorf("worker 1 should be paused at 32/16 bytes at republish time")
			return
		}
		n, err := b.RepublishLost(sentAt)
		if err != nil {
			errs <- err
			return
		}
		if n != 1 {
			errs <- fmt.Errorf("republished %d blocks, want 1", n)
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got != 8 {
		t.Fatalf("sum = %v, want 8", got)
	}

	// The paused replacement refused at least once before the window
	// closed; the refusal carried the clock past the squeeze, so the
	// retry landed the block on worker 1 (the only live worker).
	retries, republished := b.RetryStats()
	if retries < 1 {
		t.Fatalf("retries = %d, want >= 1 (paused worker must have refused the first attempt)", retries)
	}
	if republished != 1 {
		t.Fatalf("republished = %d, want 1", republished)
	}
	// The refused attempt spilled the ballast trying to make room; the
	// republished block itself is resident after the window closed.
	if st := cluster.WorkerStatsAll()[1]; st.StoreBytes < 32 {
		t.Fatalf("worker 1 holds %d resident bytes, want >= 32 (republished block)", st.StoreBytes)
	}
}
