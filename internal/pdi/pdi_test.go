package pdi

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"deisago/internal/ndarray"
	"deisago/internal/vtime"
)

// listing1 is the paper's Listing 1 configuration, lightly adapted to the
// YAML subset (same structure and expressions).
const listing1 = `
metadata: { step: int, cfg: config_t, rank: int }
data:
  temp:             # the main temperature field
    type: array
    subtype: double
    size: [ '$cfg.loc[0]', '$cfg.loc[1]' ]
plugins:
  mpi:              # get MPI rank and size
  PdiPluginDeisa:
    scheduler_info: scheduler.json
    init_on: init
    time_step: '$step'
    deisa_arrays:
      G_temp:
        type: array
        subtype: double
        size:
          - '$cfg.maxTimeStep'
          - '$cfg.loc[0] * $cfg.proc[0]'
          - '$cfg.loc[1] * $cfg.proc[1]'
        subsize:
          - 1
          - '$cfg.loc[0]'
          - '$cfg.loc[1]'
        start:
          - '$step'
          - '$cfg.loc[0] * ($rank % $cfg.proc[0])'
          - '$cfg.loc[1] * ($rank / $cfg.proc[0])'
        timedim: 0
    map_in:
      temp: G_temp
`

func TestParseYAMLListing1(t *testing.T) {
	cfg, err := ParseYAML(listing1)
	if err != nil {
		t.Fatal(err)
	}
	meta := cfg["metadata"].(map[string]any)
	if meta["step"].(string) != "int" {
		t.Fatalf("metadata.step = %v", meta["step"])
	}
	data := cfg["data"].(map[string]any)
	temp := data["temp"].(map[string]any)
	if temp["subtype"].(string) != "double" {
		t.Fatal("data.temp.subtype")
	}
	size := temp["size"].([]any)
	if size[0].(string) != "$cfg.loc[0]" {
		t.Fatalf("size[0] = %v", size[0])
	}
	plugins := cfg["plugins"].(map[string]any)
	if _, ok := plugins["mpi"]; !ok {
		t.Fatal("mpi plugin missing")
	}
	deisa := plugins["PdiPluginDeisa"].(map[string]any)
	if deisa["scheduler_info"].(string) != "scheduler.json" {
		t.Fatal("scheduler_info")
	}
	arrays := deisa["deisa_arrays"].(map[string]any)
	gt := arrays["G_temp"].(map[string]any)
	if int(gt["timedim"].(int64)) != 0 {
		t.Fatalf("timedim = %v", gt["timedim"])
	}
	start := gt["start"].([]any)
	if len(start) != 3 || start[2].(string) != "$cfg.loc[1] * ($rank / $cfg.proc[0])" {
		t.Fatalf("start = %v", start)
	}
	mapIn := deisa["map_in"].(map[string]any)
	if mapIn["temp"].(string) != "G_temp" {
		t.Fatal("map_in")
	}
}

func TestParseYAMLScalars(t *testing.T) {
	cfg, err := ParseYAML(`
a: 42
b: 3.5
c: true
d: false
e: null
f: hello world
g: "quoted # not comment"
h: 'single'
`)
	if err != nil {
		t.Fatal(err)
	}
	if cfg["a"].(int64) != 42 || cfg["b"].(float64) != 3.5 {
		t.Fatal("numbers")
	}
	if cfg["c"].(bool) != true || cfg["d"].(bool) != false {
		t.Fatal("bools")
	}
	if cfg["e"] != nil {
		t.Fatal("null")
	}
	if cfg["f"].(string) != "hello world" {
		t.Fatal("bare string")
	}
	if cfg["g"].(string) != "quoted # not comment" {
		t.Fatal("quoted string with #")
	}
	if cfg["h"].(string) != "single" {
		t.Fatal("single-quoted")
	}
}

func TestParseYAMLFlowCollections(t *testing.T) {
	cfg, err := ParseYAML(`
list: [1, 2, [3, 4]]
map: { x: 1, y: two }
empty_list: []
empty_map: {}
`)
	if err != nil {
		t.Fatal(err)
	}
	l := cfg["list"].([]any)
	if l[0].(int64) != 1 || l[2].([]any)[1].(int64) != 4 {
		t.Fatalf("flow list = %v", l)
	}
	m := cfg["map"].(map[string]any)
	if m["x"].(int64) != 1 || m["y"].(string) != "two" {
		t.Fatalf("flow map = %v", m)
	}
	if len(cfg["empty_list"].([]any)) != 0 {
		t.Fatal("empty list")
	}
	if len(cfg["empty_map"].(map[string]any)) != 0 {
		t.Fatal("empty map")
	}
}

func TestParseYAMLBlockList(t *testing.T) {
	cfg, err := ParseYAML(`
sizes:
  - 1
  - '$x'
  - 3
`)
	if err != nil {
		t.Fatal(err)
	}
	l := cfg["sizes"].([]any)
	if len(l) != 3 || l[1].(string) != "$x" {
		t.Fatalf("block list = %v", l)
	}
}

func TestParseYAMLErrors(t *testing.T) {
	for name, src := range map[string]string{
		"tabs":      "a:\n\tb: 1",
		"duplicate": "a: 1\na: 2",
		"no colon":  "just some text",
		"bad flow":  "a: [1, 2",
	} {
		if _, err := ParseYAML(src); err == nil {
			t.Fatalf("%s: no error", name)
		}
	}
}

func exprCtx() map[string]any {
	return map[string]any{
		"step": int64(3),
		"rank": int64(5),
		"cfg": map[string]any{
			"loc":         []any{int64(8), int64(16)},
			"proc":        []any{int64(2), int64(3)},
			"maxTimeStep": int64(10),
		},
	}
}

func TestEvalExprListing1(t *testing.T) {
	ctx := exprCtx()
	cases := map[string]int64{
		"$step":                                3,
		"$cfg.loc[0]":                          8,
		"$cfg.loc[0] * $cfg.proc[0]":           16,
		"$cfg.loc[0] * ($rank % $cfg.proc[0])": 8,  // 8 * (5%2=1)
		"$cfg.loc[1] * ($rank / $cfg.proc[0])": 32, // 16 * (5/2=2)
		"$cfg.maxTimeStep":                     10,
		"1 + 2 * 3":                            7,
		"(1 + 2) * 3":                          9,
		"-4 + 10":                              6,
		"7 % 3":                                1,
	}
	for expr, want := range cases {
		got, err := EvalExpr(expr, ctx)
		if err != nil {
			t.Fatalf("%q: %v", expr, err)
		}
		if got.(int64) != want {
			t.Fatalf("%q = %v, want %d", expr, got, want)
		}
	}
}

func TestEvalExprFloats(t *testing.T) {
	got, err := EvalExpr("1.5 * 4", nil)
	if err != nil || got.(float64) != 6 {
		t.Fatalf("float eval = %v, %v", got, err)
	}
	got, err = EvalExpr("3 / 2", nil)
	if err != nil || got.(int64) != 1 {
		t.Fatalf("integer division = %v, want 1", got)
	}
}

func TestEvalExprErrors(t *testing.T) {
	ctx := exprCtx()
	for _, expr := range []string{
		"$nope", "$cfg.missing", "$cfg.loc[9]", "$cfg.loc[", "1 +", "(1", "$step.x",
		"1 / 0", "5 % 0", "$cfg.loc[1.5]", "@", "1 2",
	} {
		if _, err := EvalExpr(expr, ctx); err == nil {
			t.Fatalf("%q: expected error", expr)
		}
	}
}

func TestEvalIntAndValue(t *testing.T) {
	ctx := exprCtx()
	if n, err := EvalInt("$step + 1", ctx); err != nil || n != 4 {
		t.Fatalf("EvalInt = %d, %v", n, err)
	}
	if v, err := EvalValue(int64(7), ctx); err != nil || v.(int64) != 7 {
		t.Fatalf("EvalValue int = %v", v)
	}
	if v, err := EvalValue("$rank", ctx); err != nil || v.(int64) != 5 {
		t.Fatalf("EvalValue expr = %v", v)
	}
	if _, err := EvalValue([]any{}, ctx); err == nil {
		t.Fatal("EvalValue of list should error")
	}
}

// Property: random integer arithmetic expressions evaluate like Go.
func TestEvalArithmeticQuick(t *testing.T) {
	f := func(a, b, c int16) bool {
		bi := int64(b)
		if bi == 0 {
			bi = 1
		}
		expr := fmt.Sprintf("%d + %d * %d / %d", a, c, a, bi)
		got, err := EvalExpr(expr, nil)
		if err != nil {
			return false
		}
		want := int64(a) + int64(c)*int64(a)/bi
		return got.(int64) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// recorderPlugin records callbacks and advances time by a fixed cost.
type recorderPlugin struct {
	name   string
	shares []string
	events []string
	fin    bool
	cost   vtime.Dur
}

func (r *recorderPlugin) Name() string       { return r.name }
func (r *recorderPlugin) Init(*System) error { return nil }
func (r *recorderPlugin) DataShared(name string, _ *ndarray.Array, at vtime.Time) (vtime.Time, error) {
	r.shares = append(r.shares, name)
	return at + r.cost, nil
}
func (r *recorderPlugin) Event(name string, at vtime.Time) (vtime.Time, error) {
	r.events = append(r.events, name)
	return at + r.cost, nil
}
func (r *recorderPlugin) Finalize(at vtime.Time) (vtime.Time, error) {
	r.fin = true
	return at, nil
}

func TestSystemShareEventFinalize(t *testing.T) {
	s, err := New(listing1)
	if err != nil {
		t.Fatal(err)
	}
	rec := &recorderPlugin{name: "rec", cost: 0.5}
	if err := s.AddPlugin(rec); err != nil {
		t.Fatal(err)
	}
	if err := s.AddPlugin(&recorderPlugin{name: "rec"}); err == nil {
		t.Fatal("duplicate plugin accepted")
	}
	end, err := s.Event("init", 1)
	if err != nil || end != 1.5 {
		t.Fatalf("Event end = %v, err %v", end, err)
	}
	data := ndarray.New(2, 2)
	end, err = s.Share("temp", data, end)
	if err != nil || end != 2.0 {
		t.Fatalf("Share end = %v, err %v", end, err)
	}
	if _, err := s.Share("nope", data, end); err == nil {
		t.Fatal("undeclared share accepted")
	}
	if _, err := s.Finalize(end); err != nil {
		t.Fatal(err)
	}
	if !rec.fin || len(rec.shares) != 1 || rec.shares[0] != "temp" || rec.events[0] != "init" {
		t.Fatalf("recorder state: %+v", rec)
	}
}

func TestSystemMetadataAndDataSize(t *testing.T) {
	s, err := New(listing1)
	if err != nil {
		t.Fatal(err)
	}
	s.Expose("step", 2)
	s.Expose("rank", 3)
	s.Expose("cfg", map[string]any{
		"loc":         []int{4, 8},
		"proc":        []int{2, 2},
		"maxTimeStep": 10,
	})
	if v, ok := s.Meta("rank"); !ok || v.(int64) != 3 {
		t.Fatalf("Meta(rank) = %v", v)
	}
	size, err := s.DataSize("temp")
	if err != nil {
		t.Fatal(err)
	}
	if size[0] != 4 || size[1] != 8 {
		t.Fatalf("DataSize = %v", size)
	}
	if _, err := s.DataSize("ghost"); err == nil {
		t.Fatal("DataSize of undeclared data")
	}
	if v, err := s.Eval("$cfg.loc[0] * ($rank % $cfg.proc[0])"); err != nil || v.(int64) != 4 {
		t.Fatalf("Eval = %v, %v", v, err)
	}
}

func TestPluginConfig(t *testing.T) {
	s, err := New(listing1)
	if err != nil {
		t.Fatal(err)
	}
	pc, ok := s.PluginConfig("PdiPluginDeisa")
	if !ok {
		t.Fatal("PdiPluginDeisa config missing")
	}
	if pc["init_on"].(string) != "init" {
		t.Fatalf("init_on = %v", pc["init_on"])
	}
	// The bare `mpi:` plugin has an empty config.
	mc, ok := s.PluginConfig("mpi")
	if !ok || len(mc) != 0 {
		t.Fatalf("mpi config = %v, %v", mc, ok)
	}
	if _, ok := s.PluginConfig("ghost"); ok {
		t.Fatal("ghost plugin found")
	}
}

func TestEvalIntList(t *testing.T) {
	s := NewFromConfig(map[string]any{})
	s.Expose("n", 5)
	got, err := s.EvalIntList([]any{int64(1), "$n * 2", "3"})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[1] != 10 || got[2] != 3 {
		t.Fatalf("EvalIntList = %v", got)
	}
	if _, err := s.EvalIntList("not a list"); err == nil {
		t.Fatal("non-list accepted")
	}
	if _, err := s.EvalIntList([]any{"1.5"}); err == nil {
		t.Fatal("non-integer accepted")
	}
}

func TestFormatContext(t *testing.T) {
	out := FormatContext(map[string]any{"a": int64(1)})
	if !strings.Contains(out, "a: 1") {
		t.Fatalf("FormatContext = %q", out)
	}
}

func TestYAMLBlockListVariants(t *testing.T) {
	// Nested block items and "- key: value" forms in lists.
	cfg, err := ParseYAML(`
jobs:
  - name: first
  - second
  -
  - nested:
      x: 1
      y: [2, 3]
`)
	if err != nil {
		t.Fatal(err)
	}
	jobs := cfg["jobs"].([]any)
	if len(jobs) != 4 {
		t.Fatalf("jobs = %v", jobs)
	}
	if jobs[0].(map[string]any)["name"].(string) != "first" {
		t.Fatalf("jobs[0] = %v", jobs[0])
	}
	if jobs[1].(string) != "second" {
		t.Fatalf("jobs[1] = %v", jobs[1])
	}
	if jobs[2] != nil {
		t.Fatalf("jobs[2] = %v", jobs[2])
	}
	nested := jobs[3].(map[string]any)["nested"].(map[string]any)
	if nested["x"].(int64) != 1 || nested["y"].([]any)[1].(int64) != 3 {
		t.Fatalf("nested = %v", nested)
	}
}

func TestYAMLListOfBlocks(t *testing.T) {
	cfg, err := ParseYAML(`
steps:
  -
    a: 1
    b: 2
  -
    a: 3
`)
	if err != nil {
		t.Fatal(err)
	}
	steps := cfg["steps"].([]any)
	if len(steps) != 2 {
		t.Fatalf("steps = %v", steps)
	}
	if steps[0].(map[string]any)["b"].(int64) != 2 || steps[1].(map[string]any)["a"].(int64) != 3 {
		t.Fatalf("steps = %v", steps)
	}
}

func TestIndexValueVariants(t *testing.T) {
	ctx := map[string]any{
		"ints":   []int{7, 8},
		"i64s":   []int64{9, 10},
		"floats": []float64{1.5, 2.5},
		"scalar": int64(3),
	}
	if v, err := EvalExpr("$ints[1]", ctx); err != nil || v.(int64) != 8 {
		t.Fatalf("ints: %v %v", v, err)
	}
	if v, err := EvalExpr("$i64s[0]", ctx); err != nil || v.(int64) != 9 {
		t.Fatalf("i64s: %v %v", v, err)
	}
	if v, err := EvalExpr("$floats[1] * 2", ctx); err != nil || v.(float64) != 5 {
		t.Fatalf("floats: %v %v", v, err)
	}
	for _, expr := range []string{"$ints[5]", "$i64s[9]", "$floats[9]", "$scalar[0]"} {
		if _, err := EvalExpr(expr, ctx); err == nil {
			t.Fatalf("%q accepted", expr)
		}
	}
}

func TestEvalIntErrors(t *testing.T) {
	if _, err := EvalInt("$nope", nil); err == nil {
		t.Fatal("unknown ref accepted")
	}
	ctx := map[string]any{"s": "text"}
	if _, err := EvalInt("$s", ctx); err == nil {
		t.Fatal("string result accepted")
	}
	if n, err := EvalInt("2.9", nil); err != nil || n != 2 {
		t.Fatalf("float truncation: %d %v", n, err)
	}
}

func TestApplyMixedTypes(t *testing.T) {
	// int op float promotes to float.
	cases := map[string]float64{
		"1 + 2.5":  3.5,
		"2.5 - 1":  1.5,
		"4 / 2.0":  2,
		"1.5 * 2":  3,
		"-2.5 + 1": -1.5,
	}
	for expr, want := range cases {
		v, err := EvalExpr(expr, nil)
		if err != nil {
			t.Fatalf("%q: %v", expr, err)
		}
		if v.(float64) != want {
			t.Fatalf("%q = %v, want %v", expr, v, want)
		}
	}
	if _, err := EvalExpr("2.5 % 2", nil); err == nil {
		t.Fatal("float modulo accepted")
	}
	if _, err := EvalExpr("1.5 / 0.0", nil); err == nil {
		t.Fatal("float division by zero accepted")
	}
}

func TestConfigAndMetadataAccessors(t *testing.T) {
	s := NewFromConfig(map[string]any{"k": int64(1)})
	if s.Config()["k"].(int64) != 1 {
		t.Fatal("Config accessor")
	}
	s.Expose("a", 5)
	md := s.Metadata()
	if md["a"].(int64) != 5 {
		t.Fatal("Metadata accessor")
	}
}
