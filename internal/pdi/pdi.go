package pdi

import (
	"fmt"

	"deisago/internal/ndarray"
	"deisago/internal/vtime"
)

// Plugin reacts to data shares and events. Plugins are the extension
// point PDI uses to decouple what a simulation exposes from what is done
// with it; the deisa plugin (package core) is one implementation.
type Plugin interface {
	// Name identifies the plugin (its key under `plugins:` in the
	// configuration).
	Name() string
	// Init is called once when the plugin is attached.
	Init(s *System) error
	// DataShared is called when the simulation shares a buffer. The
	// plugin returns the virtual time at which the share call may return.
	DataShared(name string, data *ndarray.Array, at vtime.Time) (vtime.Time, error)
	// Event is called for named events (e.g. the init_on event).
	Event(name string, at vtime.Time) (vtime.Time, error)
	// Finalize is called when the simulation tears down.
	Finalize(at vtime.Time) (vtime.Time, error)
}

// System is one rank's PDI instance: configuration, exposed metadata, and
// attached plugins.
type System struct {
	config  map[string]any
	meta    map[string]any
	plugins []Plugin
}

// New parses the configuration and returns a System with no plugins
// attached yet.
func New(configYAML string) (*System, error) {
	cfg, err := ParseYAML(configYAML)
	if err != nil {
		return nil, err
	}
	return &System{config: cfg, meta: map[string]any{}}, nil
}

// NewFromConfig builds a System from an already-parsed configuration.
func NewFromConfig(cfg map[string]any) *System {
	return &System{config: cfg, meta: map[string]any{}}
}

// Config returns the parsed configuration tree.
func (s *System) Config() map[string]any { return s.config }

// PluginConfig returns the configuration block of a named plugin.
func (s *System) PluginConfig(name string) (map[string]any, bool) {
	plugins, ok := s.config["plugins"].(map[string]any)
	if !ok {
		return nil, false
	}
	pc, ok := plugins[name]
	if !ok {
		return nil, false
	}
	m, ok := pc.(map[string]any)
	if !ok {
		// A plugin may be listed with an empty body.
		return map[string]any{}, true
	}
	return m, true
}

// Expose publishes a metadata value (the paper's `metadata:` section:
// $step, $rank, $cfg...). Re-exposing a name overwrites it, as PDI does
// each timestep for $step.
func (s *System) Expose(name string, value any) {
	s.meta[name] = normalize(value)
}

// normalize converts Go values into the expression evaluator's types.
func normalize(v any) any {
	switch x := v.(type) {
	case int:
		return int64(x)
	case []int:
		out := make([]any, len(x))
		for i, e := range x {
			out[i] = int64(e)
		}
		return out
	case map[string]any:
		out := make(map[string]any, len(x))
		for k, e := range x {
			out[k] = normalize(e)
		}
		return out
	default:
		return v
	}
}

// Meta returns an exposed metadata value.
func (s *System) Meta(name string) (any, bool) {
	v, ok := s.meta[name]
	return v, ok
}

// Metadata returns the live metadata context used for expression
// evaluation.
func (s *System) Metadata() map[string]any { return s.meta }

// Eval evaluates an expression against the exposed metadata.
func (s *System) Eval(expr string) (any, error) { return EvalExpr(expr, s.meta) }

// EvalIntList evaluates a YAML list of scalar expressions to ints.
func (s *System) EvalIntList(v any) ([]int, error) {
	list, ok := v.([]any)
	if !ok {
		return nil, fmt.Errorf("pdi: expected a list, got %T", v)
	}
	out := make([]int, len(list))
	for i, e := range list {
		ev, err := EvalValue(e, s.meta)
		if err != nil {
			return nil, err
		}
		n, ok := toInt(ev)
		if !ok {
			return nil, fmt.Errorf("pdi: list element %d evaluated to non-integer %v", i, ev)
		}
		out[i] = n
	}
	return out, nil
}

// DataSize resolves the declared size of a `data:` entry against the
// current metadata.
func (s *System) DataSize(name string) ([]int, error) {
	data, ok := s.config["data"].(map[string]any)
	if !ok {
		return nil, fmt.Errorf("pdi: configuration has no data section")
	}
	d, ok := data[name].(map[string]any)
	if !ok {
		return nil, fmt.Errorf("pdi: data %q not declared", name)
	}
	size, ok := d["size"]
	if !ok {
		return nil, fmt.Errorf("pdi: data %q has no size", name)
	}
	return s.EvalIntList(size)
}

// HasData reports whether a buffer name is declared in the data section.
func (s *System) HasData(name string) bool {
	data, ok := s.config["data"].(map[string]any)
	if !ok {
		return false
	}
	_, ok = data[name]
	return ok
}

// AddPlugin attaches and initializes a plugin.
func (s *System) AddPlugin(p Plugin) error {
	for _, q := range s.plugins {
		if q.Name() == p.Name() {
			return fmt.Errorf("pdi: plugin %q already attached", p.Name())
		}
	}
	if err := p.Init(s); err != nil {
		return fmt.Errorf("pdi: init plugin %q: %w", p.Name(), err)
	}
	s.plugins = append(s.plugins, p)
	return nil
}

// Share exposes a data buffer to all plugins (PDI_share with read access,
// no copy). The buffer must be declared in the configuration's data
// section. Plugins are notified in attach order; virtual time threads
// through them.
func (s *System) Share(name string, data *ndarray.Array, at vtime.Time) (vtime.Time, error) {
	if !s.HasData(name) {
		return at, fmt.Errorf("pdi: share of undeclared data %q", name)
	}
	t := at
	for _, p := range s.plugins {
		var err error
		t, err = p.DataShared(name, data, t)
		if err != nil {
			return t, fmt.Errorf("pdi: plugin %q on share %q: %w", p.Name(), name, err)
		}
	}
	return t, nil
}

// Event broadcasts a named event to all plugins.
func (s *System) Event(name string, at vtime.Time) (vtime.Time, error) {
	t := at
	for _, p := range s.plugins {
		var err error
		t, err = p.Event(name, t)
		if err != nil {
			return t, fmt.Errorf("pdi: plugin %q on event %q: %w", p.Name(), name, err)
		}
	}
	return t, nil
}

// Finalize tears down all plugins.
func (s *System) Finalize(at vtime.Time) (vtime.Time, error) {
	t := at
	for _, p := range s.plugins {
		var err error
		t, err = p.Finalize(t)
		if err != nil {
			return t, fmt.Errorf("pdi: plugin %q finalize: %w", p.Name(), err)
		}
	}
	return t, nil
}
