// Package pdi reimplements the PDI data interface used by the paper to
// decouple I/O concerns from the simulation (§2.3): the simulation
// exposes metadata and shares data buffers under configured names, and
// plugins react to share/event notifications. It includes a parser for
// the YAML subset used by deisa configuration files (Listing 1) and an
// evaluator for the $-expressions embedded in them (e.g.
// '$cfg.loc[0] * ($rank % $cfg.proc[0])').
package pdi

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseYAML parses the YAML subset used by deisa configuration files:
// nested maps by indentation, block lists with "- item", inline scalars
// (ints, floats, bools, bare or quoted strings), and # comments. The top
// level must be a map.
func ParseYAML(src string) (map[string]any, error) {
	lines, err := logicalLines(src)
	if err != nil {
		return nil, err
	}
	v, rest, err := parseBlock(lines, 0)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("pdi: trailing content at line %d: %q", rest[0].num, rest[0].text)
	}
	m, ok := v.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("pdi: top-level YAML must be a map, got %T", v)
	}
	return m, nil
}

type line struct {
	indent int
	text   string
	num    int
}

func logicalLines(src string) ([]line, error) {
	var out []line
	for i, raw := range strings.Split(src, "\n") {
		txt := stripComment(raw)
		trimmed := strings.TrimLeft(txt, " ")
		if strings.TrimSpace(trimmed) == "" {
			continue
		}
		if strings.Contains(txt, "\t") {
			return nil, fmt.Errorf("pdi: line %d: tabs are not allowed in YAML indentation", i+1)
		}
		out = append(out, line{indent: len(txt) - len(trimmed), text: strings.TrimSpace(trimmed), num: i + 1})
	}
	return out, nil
}

// stripComment removes a trailing # comment not inside quotes.
func stripComment(s string) string {
	inS, inD := false, false
	for i, r := range s {
		switch r {
		case '\'':
			if !inD {
				inS = !inS
			}
		case '"':
			if !inS {
				inD = !inD
			}
		case '#':
			if !inS && !inD {
				return s[:i]
			}
		}
	}
	return s
}

// parseBlock parses lines at the given indentation into a map or list.
func parseBlock(lines []line, indent int) (any, []line, error) {
	if len(lines) == 0 {
		return map[string]any{}, lines, nil
	}
	if lines[0].indent != indent {
		return nil, lines, fmt.Errorf("pdi: line %d: unexpected indent %d, want %d", lines[0].num, lines[0].indent, indent)
	}
	if strings.HasPrefix(lines[0].text, "- ") || lines[0].text == "-" {
		return parseList(lines, indent)
	}
	return parseMap(lines, indent)
}

func parseMap(lines []line, indent int) (any, []line, error) {
	out := map[string]any{}
	for len(lines) > 0 {
		l := lines[0]
		if l.indent < indent {
			break
		}
		if l.indent > indent {
			return nil, lines, fmt.Errorf("pdi: line %d: unexpected indent", l.num)
		}
		if strings.HasPrefix(l.text, "- ") {
			return nil, lines, fmt.Errorf("pdi: line %d: list item inside map", l.num)
		}
		key, rest, ok := splitKey(l.text)
		if !ok {
			return nil, lines, fmt.Errorf("pdi: line %d: expected 'key: value', got %q", l.num, l.text)
		}
		if _, dup := out[key]; dup {
			return nil, lines, fmt.Errorf("pdi: line %d: duplicate key %q", l.num, key)
		}
		lines = lines[1:]
		if rest != "" {
			v, err := parseScalarOrFlow(rest, l.num)
			if err != nil {
				return nil, lines, err
			}
			out[key] = v
			continue
		}
		// Nested block (or empty value).
		if len(lines) == 0 || lines[0].indent <= indent {
			out[key] = nil
			continue
		}
		child, remaining, err := parseBlock(lines, lines[0].indent)
		if err != nil {
			return nil, lines, err
		}
		out[key] = child
		lines = remaining
	}
	return out, lines, nil
}

func parseList(lines []line, indent int) (any, []line, error) {
	var out []any
	for len(lines) > 0 {
		l := lines[0]
		if l.indent < indent {
			break
		}
		if l.indent > indent {
			return nil, lines, fmt.Errorf("pdi: line %d: unexpected indent in list", l.num)
		}
		if !strings.HasPrefix(l.text, "-") {
			break
		}
		item := strings.TrimSpace(strings.TrimPrefix(l.text, "-"))
		lines = lines[1:]
		if item == "" {
			// Nested block item.
			if len(lines) == 0 || lines[0].indent <= indent {
				out = append(out, nil)
				continue
			}
			child, remaining, err := parseBlock(lines, lines[0].indent)
			if err != nil {
				return nil, lines, err
			}
			out = append(out, child)
			lines = remaining
			continue
		}
		if key, rest, ok := splitKey(item); ok && rest == "" && len(lines) > 0 && lines[0].indent > indent {
			// "- key:" starting an inline map item.
			child, remaining, err := parseBlock(lines, lines[0].indent)
			if err != nil {
				return nil, lines, err
			}
			out = append(out, map[string]any{key: child})
			lines = remaining
			continue
		} else if ok && rest != "" {
			v, err := parseScalarOrFlow(rest, l.num)
			if err != nil {
				return nil, lines, err
			}
			out = append(out, map[string]any{key: v})
			continue
		}
		v, err := parseScalarOrFlow(item, l.num)
		if err != nil {
			return nil, lines, err
		}
		out = append(out, v)
	}
	return out, lines, nil
}

// splitKey splits "key: rest" at the first top-level colon.
func splitKey(s string) (key, rest string, ok bool) {
	inS, inD := false, false
	for i, r := range s {
		switch r {
		case '\'':
			if !inD {
				inS = !inS
			}
		case '"':
			if !inS {
				inD = !inD
			}
		case ':':
			if inS || inD {
				continue
			}
			if i+1 < len(s) && s[i+1] != ' ' {
				continue
			}
			return strings.TrimSpace(s[:i]), strings.TrimSpace(s[i+1:]), true
		}
	}
	if strings.HasSuffix(s, ":") {
		return strings.TrimSpace(s[:len(s)-1]), "", true
	}
	return "", "", false
}

// parseScalarOrFlow parses an inline value: a flow list [a, b, c], a flow
// map {k: v, ...}, or a scalar.
func parseScalarOrFlow(s string, lineNum int) (any, error) {
	s = strings.TrimSpace(s)
	switch {
	case strings.HasPrefix(s, "[") && strings.HasSuffix(s, "]"):
		inner := strings.TrimSpace(s[1 : len(s)-1])
		if inner == "" {
			return []any{}, nil
		}
		parts, err := splitFlow(inner)
		if err != nil {
			return nil, fmt.Errorf("pdi: line %d: %w", lineNum, err)
		}
		out := make([]any, len(parts))
		for i, p := range parts {
			v, err := parseScalarOrFlow(p, lineNum)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	case strings.HasPrefix(s, "{") && strings.HasSuffix(s, "}"):
		inner := strings.TrimSpace(s[1 : len(s)-1])
		out := map[string]any{}
		if inner == "" {
			return out, nil
		}
		parts, err := splitFlow(inner)
		if err != nil {
			return nil, fmt.Errorf("pdi: line %d: %w", lineNum, err)
		}
		for _, p := range parts {
			key, rest, ok := splitKeyFlow(p)
			if !ok {
				return nil, fmt.Errorf("pdi: line %d: bad flow-map entry %q", lineNum, p)
			}
			v, err := parseScalarOrFlow(rest, lineNum)
			if err != nil {
				return nil, err
			}
			out[key] = v
		}
		return out, nil
	}
	if strings.HasPrefix(s, "[") || strings.HasPrefix(s, "{") {
		return nil, fmt.Errorf("pdi: line %d: unterminated flow collection %q", lineNum, s)
	}
	return parseScalar(s), nil
}

// splitKeyFlow splits "key: value" inside a flow map, where the value may
// not contain a space after the colon requirement.
func splitKeyFlow(s string) (key, rest string, ok bool) {
	i := strings.Index(s, ":")
	if i < 0 {
		return "", "", false
	}
	return strings.TrimSpace(s[:i]), strings.TrimSpace(s[i+1:]), true
}

// splitFlow splits a comma-separated flow sequence, respecting nesting
// and quotes.
func splitFlow(s string) ([]string, error) {
	var out []string
	depth := 0
	inS, inD := false, false
	start := 0
	for i, r := range s {
		switch r {
		case '\'':
			if !inD {
				inS = !inS
			}
		case '"':
			if !inS {
				inD = !inD
			}
		case '[', '{':
			if !inS && !inD {
				depth++
			}
		case ']', '}':
			if !inS && !inD {
				depth--
				if depth < 0 {
					return nil, fmt.Errorf("unbalanced brackets in %q", s)
				}
			}
		case ',':
			if depth == 0 && !inS && !inD {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	if depth != 0 || inS || inD {
		return nil, fmt.Errorf("unbalanced flow sequence %q", s)
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out, nil
}

// parseScalar interprets an unquoted scalar: int, float, bool, null, or
// string. Quoted strings keep their contents verbatim.
func parseScalar(s string) any {
	if len(s) >= 2 {
		if (s[0] == '\'' && s[len(s)-1] == '\'') || (s[0] == '"' && s[len(s)-1] == '"') {
			return s[1 : len(s)-1]
		}
	}
	switch s {
	case "null", "~":
		return nil
	case "true":
		return true
	case "false":
		return false
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return i
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f
	}
	return s
}
