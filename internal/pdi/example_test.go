package pdi_test

import (
	"fmt"

	"deisago/internal/pdi"
)

func ExampleEvalExpr() {
	ctx := map[string]any{
		"step": int64(3),
		"rank": int64(5),
		"cfg": map[string]any{
			"loc":  []any{int64(8), int64(16)},
			"proc": []any{int64(2), int64(3)},
		},
	}
	// The expressions of the paper's Listing 1.
	x, _ := pdi.EvalExpr("$cfg.loc[0] * ($rank % $cfg.proc[0])", ctx)
	y, _ := pdi.EvalExpr("$cfg.loc[1] * ($rank / $cfg.proc[0])", ctx)
	fmt.Printf("block start for rank 5 at step 3: (%v, %v, %v)\n", ctx["step"], x, y)
	// Output: block start for rank 5 at step 3: (3, 8, 32)
}

func ExampleParseYAML() {
	cfg, _ := pdi.ParseYAML(`
data:
  temp:
    size: [ '$cfg.loc[0]', '$cfg.loc[1]' ]
plugins:
  PdiPluginDeisa:
    time_step: '$step'
`)
	data := cfg["data"].(map[string]any)
	temp := data["temp"].(map[string]any)
	fmt.Println(temp["size"].([]any)[0])
	// Output: $cfg.loc[0]
}

func ExampleSystem_Share() {
	sys, _ := pdi.New(`
data:
  field: { size: [2, 2] }
plugins: {}
`)
	sys.Expose("step", 0)
	fmt.Println(sys.HasData("field"), sys.HasData("ghost"))
	// Output: true false
}
