package pdi

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// EvalExpr evaluates a deisa configuration expression against a metadata
// context. The grammar covers what Listing 1 of the paper uses:
//
//	expr   := term (('+'|'-') term)*
//	term   := unary (('*'|'/'|'%') unary)*
//	unary  := '-' unary | primary
//	primary:= number | '$' ref | '(' expr ')'
//	ref    := ident ('.' ident | '[' expr ']')*
//
// Integer arithmetic is used while both operands are integers; division
// of integers is integer division (matching the paper's '$rank /
// $cfg.proc[0]' usage). Any float operand promotes the expression to
// floating point.
func EvalExpr(expr string, ctx map[string]any) (any, error) {
	p := &exprParser{src: expr, ctx: ctx}
	v, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("pdi: trailing input %q in expression %q", p.src[p.pos:], expr)
	}
	return v, nil
}

// EvalInt evaluates an expression and coerces the result to int.
func EvalInt(expr string, ctx map[string]any) (int, error) {
	v, err := EvalExpr(expr, ctx)
	if err != nil {
		return 0, err
	}
	switch x := v.(type) {
	case int64:
		return int(x), nil
	case float64:
		return int(x), nil
	}
	return 0, fmt.Errorf("pdi: expression %q evaluated to non-numeric %T", expr, v)
}

// EvalValue evaluates a YAML scalar that may be a literal or an
// expression: strings are evaluated as expressions, numbers pass through.
func EvalValue(v any, ctx map[string]any) (any, error) {
	switch x := v.(type) {
	case string:
		return EvalExpr(x, ctx)
	case int64, float64, bool, nil:
		return x, nil
	case int:
		return int64(x), nil
	default:
		return nil, fmt.Errorf("pdi: cannot evaluate %T as an expression", v)
	}
}

type exprParser struct {
	src string
	pos int
	ctx map[string]any
}

func (p *exprParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *exprParser) peek() byte {
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *exprParser) parseExpr() (any, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		op := p.peek()
		if op != '+' && op != '-' {
			return left, nil
		}
		p.pos++
		right, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		left, err = apply(op, left, right)
		if err != nil {
			return nil, err
		}
	}
}

func (p *exprParser) parseTerm() (any, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		op := p.peek()
		if op != '*' && op != '/' && op != '%' {
			return left, nil
		}
		p.pos++
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left, err = apply(op, left, right)
		if err != nil {
			return nil, err
		}
	}
}

func (p *exprParser) parseUnary() (any, error) {
	p.skipSpace()
	if p.peek() == '-' {
		p.pos++
		v, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return apply('-', int64(0), v)
	}
	return p.parsePrimary()
}

func (p *exprParser) parsePrimary() (any, error) {
	p.skipSpace()
	switch {
	case p.peek() == '(':
		p.pos++
		v, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.peek() != ')' {
			return nil, fmt.Errorf("pdi: missing ')' in expression %q", p.src)
		}
		p.pos++
		return v, nil
	case p.peek() == '$':
		p.pos++
		return p.parseRef()
	case p.pos < len(p.src) && (unicode.IsDigit(rune(p.src[p.pos])) || p.src[p.pos] == '.'):
		start := p.pos
		for p.pos < len(p.src) && (unicode.IsDigit(rune(p.src[p.pos])) || p.src[p.pos] == '.' ||
			p.src[p.pos] == 'e' || p.src[p.pos] == 'E') {
			p.pos++
		}
		lit := p.src[start:p.pos]
		if i, err := strconv.ParseInt(lit, 10, 64); err == nil {
			return i, nil
		}
		f, err := strconv.ParseFloat(lit, 64)
		if err != nil {
			return nil, fmt.Errorf("pdi: bad numeric literal %q", lit)
		}
		return f, nil
	}
	return nil, fmt.Errorf("pdi: unexpected character %q in expression %q", string(p.peek()), p.src)
}

func (p *exprParser) parseRef() (any, error) {
	name := p.parseIdent()
	if name == "" {
		return nil, fmt.Errorf("pdi: expected identifier after '$' in %q", p.src)
	}
	cur, ok := p.ctx[name]
	if !ok {
		return nil, fmt.Errorf("pdi: unknown metadata %q", name)
	}
	for {
		switch p.peek() {
		case '.':
			p.pos++
			field := p.parseIdent()
			if field == "" {
				return nil, fmt.Errorf("pdi: expected field name after '.' in %q", p.src)
			}
			m, ok := cur.(map[string]any)
			if !ok {
				return nil, fmt.Errorf("pdi: cannot access field %q of %T", field, cur)
			}
			cur, ok = m[field]
			if !ok {
				return nil, fmt.Errorf("pdi: no field %q", field)
			}
		case '[':
			p.pos++
			idxV, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			p.skipSpace()
			if p.peek() != ']' {
				return nil, fmt.Errorf("pdi: missing ']' in %q", p.src)
			}
			p.pos++
			idx, ok := toInt(idxV)
			if !ok {
				return nil, fmt.Errorf("pdi: non-integer index %v", idxV)
			}
			cur2, err := indexValue(cur, idx)
			if err != nil {
				return nil, err
			}
			cur = cur2
		default:
			return cur, nil
		}
	}
}

func (p *exprParser) parseIdent() string {
	start := p.pos
	for p.pos < len(p.src) {
		c := rune(p.src[p.pos])
		if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' {
			p.pos++
		} else {
			break
		}
	}
	return p.src[start:p.pos]
}

func indexValue(v any, i int) (any, error) {
	switch xs := v.(type) {
	case []any:
		if i < 0 || i >= len(xs) {
			return nil, fmt.Errorf("pdi: index %d out of range [0,%d)", i, len(xs))
		}
		return xs[i], nil
	case []int:
		if i < 0 || i >= len(xs) {
			return nil, fmt.Errorf("pdi: index %d out of range [0,%d)", i, len(xs))
		}
		return int64(xs[i]), nil
	case []int64:
		if i < 0 || i >= len(xs) {
			return nil, fmt.Errorf("pdi: index %d out of range [0,%d)", i, len(xs))
		}
		return xs[i], nil
	case []float64:
		if i < 0 || i >= len(xs) {
			return nil, fmt.Errorf("pdi: index %d out of range [0,%d)", i, len(xs))
		}
		return xs[i], nil
	}
	return nil, fmt.Errorf("pdi: cannot index %T", v)
}

func toInt(v any) (int, bool) {
	switch x := v.(type) {
	case int64:
		return int(x), true
	case int:
		return x, true
	case float64:
		if x == float64(int(x)) {
			return int(x), true
		}
	}
	return 0, false
}

func apply(op byte, a, b any) (any, error) {
	ai, aok := a.(int64)
	bi, bok := b.(int64)
	if aok && bok {
		switch op {
		case '+':
			return ai + bi, nil
		case '-':
			return ai - bi, nil
		case '*':
			return ai * bi, nil
		case '/':
			if bi == 0 {
				return nil, fmt.Errorf("pdi: division by zero")
			}
			return ai / bi, nil
		case '%':
			if bi == 0 {
				return nil, fmt.Errorf("pdi: modulo by zero")
			}
			return ai % bi, nil
		}
	}
	af, err := toFloat(a)
	if err != nil {
		return nil, err
	}
	bf, err := toFloat(b)
	if err != nil {
		return nil, err
	}
	switch op {
	case '+':
		return af + bf, nil
	case '-':
		return af - bf, nil
	case '*':
		return af * bf, nil
	case '/':
		if bf == 0 {
			return nil, fmt.Errorf("pdi: division by zero")
		}
		return af / bf, nil
	case '%':
		return nil, fmt.Errorf("pdi: modulo requires integer operands")
	}
	return nil, fmt.Errorf("pdi: unknown operator %q", string(op))
}

func toFloat(v any) (float64, error) {
	switch x := v.(type) {
	case int64:
		return float64(x), nil
	case float64:
		return x, nil
	case int:
		return float64(x), nil
	}
	return 0, fmt.Errorf("pdi: non-numeric operand %T (%v)", v, v)
}

// FormatContext renders a context for error messages and debugging.
func FormatContext(ctx map[string]any) string {
	var sb strings.Builder
	sb.WriteString("{")
	first := true
	for k, v := range ctx {
		if !first {
			sb.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&sb, "%s: %v", k, v)
	}
	sb.WriteString("}")
	return sb.String()
}
