// Package chaos provides deterministic fault injection for the in
// transit coupling: seeded fault plans (worker kills, link degradation,
// dropped or delayed bridge publishes) that compose with any harness
// scenario, and a controller that executes a plan and records a
// reproducible event log.
//
// Determinism is the design center. Faults trigger on logical
// coordinates — a kill fires when a given rank publishes a given step,
// a drop hits the first N attempts of a given (rank, step) — never on
// wall or virtual time races, so the same seed produces the same event
// log on every run regardless of goroutine interleaving. Link
// degradation is keyed on virtual-time windows, which perturbs timing
// but not results: the analytics are pure functions of the published
// data.
package chaos

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"deisago/internal/netsim"
	"deisago/internal/vtime"
)

// Kind discriminates fault events.
type Kind int

// Fault kinds.
const (
	// KindKillWorker kills worker Worker when rank Rank first publishes
	// a block of step Step.
	KindKillWorker Kind = iota
	// KindDegradeLink multiplies the service time of transfers between
	// nodes From and To (either direction) by Factor inside the virtual
	// window [Start, End); End <= 0 means open-ended.
	KindDegradeLink
	// KindDropPublish loses the first Count publish attempts of every
	// block rank Rank publishes at step Step.
	KindDropPublish
	// KindDelayPublish stalls rank Rank for Delay virtual seconds before
	// the first attempt of every block it publishes at step Step.
	KindDelayPublish
	// KindMemLimit squeezes worker Worker's memory limit to Limit bytes
	// inside the virtual window [Start, End); End <= 0 means open-ended.
	// The worker spills to fit and refuses scatters it cannot hold, which
	// the bridges absorb via retry/backoff.
	KindMemLimit
	// KindKillJob cancels tenant Tenant's pipeline from timestep Step
	// on (multi-job runs): the job's analytics truncate their selection
	// to steps before Step, its bridges filter everything else, and the
	// surviving tenants' results must be bit-identical to a run where
	// the killed tenant never existed. Step 0 cancels before any data
	// flows.
	KindKillJob
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindKillWorker:
		return "kill"
	case KindDegradeLink:
		return "degrade"
	case KindDropPublish:
		return "drop"
	case KindDelayPublish:
		return "delay"
	case KindMemLimit:
		return "memlimit"
	case KindKillJob:
		return "killjob"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one planned fault. Which fields matter depends on Kind.
type Event struct {
	Kind Kind

	Worker int // kill: victim worker id

	Rank int // kill/drop/delay: triggering rank
	Step int // kill/drop/delay: triggering timestep

	Count int       // drop: number of leading attempts lost
	Delay vtime.Dur // delay: virtual stall per publish

	From, To netsim.NodeID // degrade: link endpoints
	Factor   float64       // degrade: service-time multiplier (>1 slower)
	Start    vtime.Time    // degrade/memlimit: window start (virtual seconds)
	End      vtime.Time    // degrade/memlimit: window end; <= 0 means open-ended

	Limit int64 // memlimit: squeezed per-worker limit in bytes

	Tenant string // killjob: cancelled tenant name
}

// String renders the event in the plan DSL.
func (e Event) String() string {
	switch e.Kind {
	case KindKillWorker:
		return fmt.Sprintf("kill:%d@%d/%d", e.Worker, e.Rank, e.Step)
	case KindDegradeLink:
		end := "inf"
		if e.End > 0 {
			end = trimFloat(float64(e.End))
		}
		return fmt.Sprintf("degrade:%d-%d:%s@%s-%s",
			e.From, e.To, trimFloat(e.Factor), trimFloat(float64(e.Start)), end)
	case KindDropPublish:
		return fmt.Sprintf("drop:%d/%d:%d", e.Rank, e.Step, e.Count)
	case KindDelayPublish:
		return fmt.Sprintf("delay:%d/%d:%s", e.Rank, e.Step, trimFloat(float64(e.Delay)))
	case KindMemLimit:
		end := "inf"
		if e.End > 0 {
			end = trimFloat(float64(e.End))
		}
		return fmt.Sprintf("memlimit:%d:%d@%s-%s",
			e.Worker, e.Limit, trimFloat(float64(e.Start)), end)
	case KindKillJob:
		return fmt.Sprintf("killjob:%s@%d", e.Tenant, e.Step)
	}
	return fmt.Sprintf("?%d", int(e.Kind))
}

func trimFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Plan is an ordered list of fault events plus the seed that generated
// it (0 for hand-written plans).
type Plan struct {
	Seed   int64
	Events []Event
}

// String renders the plan in the DSL accepted by ParsePlan:
// semicolon-separated events, e.g.
// "kill:1@0/3;degrade:2-5:4@0.5-inf;drop:0/2:2;delay:1/4:0.25".
func (p *Plan) String() string {
	parts := make([]string, len(p.Events))
	for i, e := range p.Events {
		parts[i] = e.String()
	}
	return strings.Join(parts, ";")
}

// Kills returns the kill events' victim worker ids, in plan order.
func (p *Plan) Kills() []int {
	var out []int
	for _, e := range p.Events {
		if e.Kind == KindKillWorker {
			out = append(out, e.Worker)
		}
	}
	return out
}

// ParsePlan parses the plan DSL. Grammar (semicolon-separated):
//
//	kill:W@R/S        kill worker W when rank R publishes step S
//	degrade:A-B:F@T1-T2   slow link A<->B by factor F in [T1,T2); T2 may be "inf"
//	drop:R/S:N        drop the first N publish attempts of rank R at step S
//	delay:R/S:D       stall rank R for D virtual seconds at step S
//	memlimit:W:B@T1-T2    squeeze worker W's memory limit to B bytes in [T1,T2); T2 may be "inf"
//	killjob:TENANT@S  cancel tenant TENANT's pipeline from timestep S on
func ParsePlan(s string) (*Plan, error) {
	p := &Plan{}
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kind, rest, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("chaos: event %q: missing ':'", part)
		}
		var ev Event
		var err error
		switch kind {
		case "kill":
			ev, err = parseKill(rest)
		case "degrade":
			ev, err = parseDegrade(rest)
		case "drop":
			ev, err = parseDrop(rest)
		case "delay":
			ev, err = parseDelay(rest)
		case "memlimit":
			ev, err = parseMemLimit(rest)
		case "killjob":
			ev, err = parseKillJob(rest)
		default:
			err = fmt.Errorf("unknown kind %q", kind)
		}
		if err != nil {
			return nil, fmt.Errorf("chaos: event %q: %w", part, err)
		}
		p.Events = append(p.Events, ev)
	}
	if len(p.Events) == 0 {
		return nil, fmt.Errorf("chaos: empty plan %q", s)
	}
	return p, nil
}

func parseKill(s string) (Event, error) {
	var w, r, step int
	if _, err := fmt.Sscanf(s, "%d@%d/%d", &w, &r, &step); err != nil {
		return Event{}, fmt.Errorf("want W@R/S: %w", err)
	}
	return Event{Kind: KindKillWorker, Worker: w, Rank: r, Step: step}, nil
}

func parseDegrade(s string) (Event, error) {
	link, rest, ok := strings.Cut(s, ":")
	if !ok {
		return Event{}, fmt.Errorf("want A-B:F@T1-T2")
	}
	var a, b int
	if _, err := fmt.Sscanf(link, "%d-%d", &a, &b); err != nil {
		return Event{}, fmt.Errorf("link %q: %w", link, err)
	}
	factorStr, window, ok := strings.Cut(rest, "@")
	if !ok {
		return Event{}, fmt.Errorf("want F@T1-T2")
	}
	factor, err := strconv.ParseFloat(factorStr, 64)
	if err != nil || factor <= 0 {
		return Event{}, fmt.Errorf("bad factor %q", factorStr)
	}
	t1s, t2s, ok := strings.Cut(window, "-")
	if !ok {
		return Event{}, fmt.Errorf("window %q: want T1-T2", window)
	}
	t1, err := strconv.ParseFloat(t1s, 64)
	if err != nil {
		return Event{}, fmt.Errorf("bad window start %q", t1s)
	}
	t2 := -1.0
	if t2s != "inf" {
		t2, err = strconv.ParseFloat(t2s, 64)
		if err != nil {
			return Event{}, fmt.Errorf("bad window end %q", t2s)
		}
	}
	return Event{
		Kind: KindDegradeLink,
		From: netsim.NodeID(a), To: netsim.NodeID(b),
		Factor: factor, Start: vtime.Time(t1), End: vtime.Time(t2),
	}, nil
}

func parseDrop(s string) (Event, error) {
	var r, step, n int
	if _, err := fmt.Sscanf(s, "%d/%d:%d", &r, &step, &n); err != nil {
		return Event{}, fmt.Errorf("want R/S:N: %w", err)
	}
	if n <= 0 {
		return Event{}, fmt.Errorf("drop count %d must be positive", n)
	}
	return Event{Kind: KindDropPublish, Rank: r, Step: step, Count: n}, nil
}

func parseDelay(s string) (Event, error) {
	coord, ds, ok := strings.Cut(s, ":")
	if !ok {
		return Event{}, fmt.Errorf("want R/S:D")
	}
	var r, step int
	if _, err := fmt.Sscanf(coord, "%d/%d", &r, &step); err != nil {
		return Event{}, fmt.Errorf("want R/S: %w", err)
	}
	d, err := strconv.ParseFloat(ds, 64)
	if err != nil || d < 0 {
		return Event{}, fmt.Errorf("bad delay %q", ds)
	}
	return Event{Kind: KindDelayPublish, Rank: r, Step: step, Delay: vtime.Dur(d)}, nil
}

func parseMemLimit(s string) (Event, error) {
	ws, rest, ok := strings.Cut(s, ":")
	if !ok {
		return Event{}, fmt.Errorf("want W:B@T1-T2")
	}
	w, err := strconv.Atoi(ws)
	if err != nil {
		return Event{}, fmt.Errorf("bad worker %q", ws)
	}
	bs, window, ok := strings.Cut(rest, "@")
	if !ok {
		return Event{}, fmt.Errorf("want B@T1-T2")
	}
	limit, err := strconv.ParseInt(bs, 10, 64)
	if err != nil || limit <= 0 {
		return Event{}, fmt.Errorf("bad limit %q", bs)
	}
	t1s, t2s, ok := strings.Cut(window, "-")
	if !ok {
		return Event{}, fmt.Errorf("window %q: want T1-T2", window)
	}
	t1, err := strconv.ParseFloat(t1s, 64)
	if err != nil {
		return Event{}, fmt.Errorf("bad window start %q", t1s)
	}
	t2 := -1.0
	if t2s != "inf" {
		t2, err = strconv.ParseFloat(t2s, 64)
		if err != nil {
			return Event{}, fmt.Errorf("bad window end %q", t2s)
		}
	}
	return Event{
		Kind: KindMemLimit, Worker: w, Limit: limit,
		Start: vtime.Time(t1), End: vtime.Time(t2),
	}, nil
}

func parseKillJob(s string) (Event, error) {
	tenant, ss, ok := strings.Cut(s, "@")
	if !ok {
		return Event{}, fmt.Errorf("want TENANT@S")
	}
	if tenant == "" || strings.ContainsRune(tenant, '/') {
		return Event{}, fmt.Errorf("bad tenant %q (non-empty, no '/')", tenant)
	}
	step, err := strconv.Atoi(ss)
	if err != nil || step < 0 {
		return Event{}, fmt.Errorf("bad step %q", ss)
	}
	return Event{Kind: KindKillJob, Tenant: tenant, Step: step}, nil
}

// Spec bounds random plan generation: the scenario's shape plus how many
// faults of each kind to draw.
type Spec struct {
	Workers int // cluster worker count
	Ranks   int // simulation MPI ranks
	Steps   int // simulation timesteps
	// Nodes are the fabric nodes eligible as degraded-link endpoints
	// (typically worker + bridge nodes).
	Nodes []netsim.NodeID

	Kills    int // worker kills; must leave at least one survivor
	Degrades int
	Drops    int
	Delays   int

	// MemLimits is how many memlimit squeeze windows to draw; MemBytes
	// is the scenario's block size, which scales the squeezed limits
	// (each drawn limit sits in [MemBytes/4, MemBytes], forcing spills
	// without wedging single-block scatters forever — windows are always
	// time-bounded). MemBytes must be positive when MemLimits > 0.
	MemLimits int
	MemBytes  int64

	// Tenants are the job names of a multi-job scenario; JobKills is how
	// many of them to cancel mid-run (distinct victims, at most
	// len(Tenants)-1 so at least one job survives).
	Tenants  []string
	JobKills int
}

// NewRandomPlan draws a fault plan from the seed. Kill victims are
// distinct and at most Workers-1, so every kill in the plan is
// executable; kill/drop/delay trigger steps avoid step 0 when possible
// so the contract handshake completes before faults start.
func NewRandomPlan(seed int64, spec Spec) (*Plan, error) {
	if spec.Workers < 1 || spec.Ranks < 1 || spec.Steps < 1 {
		return nil, fmt.Errorf("chaos: spec needs workers/ranks/steps >= 1, got %d/%d/%d",
			spec.Workers, spec.Ranks, spec.Steps)
	}
	if spec.Kills > spec.Workers-1 {
		return nil, fmt.Errorf("chaos: %d kills would leave no survivor of %d workers",
			spec.Kills, spec.Workers)
	}
	if spec.Degrades > 0 && len(spec.Nodes) < 2 {
		return nil, fmt.Errorf("chaos: degrades need at least 2 nodes")
	}
	if spec.MemLimits > 0 && spec.MemBytes <= 0 {
		return nil, fmt.Errorf("chaos: memlimit draws need MemBytes > 0")
	}
	if spec.JobKills > 0 && spec.JobKills > len(spec.Tenants)-1 {
		return nil, fmt.Errorf("chaos: %d job kills would leave no surviving tenant of %d",
			spec.JobKills, len(spec.Tenants))
	}
	rng := rand.New(rand.NewSource(seed))
	p := &Plan{Seed: seed}
	step := func() int {
		if spec.Steps == 1 {
			return 0
		}
		return 1 + rng.Intn(spec.Steps-1)
	}
	victims := rng.Perm(spec.Workers)[:spec.Kills]
	for _, w := range victims {
		p.Events = append(p.Events, Event{
			Kind: KindKillWorker, Worker: w, Rank: rng.Intn(spec.Ranks), Step: step(),
		})
	}
	for i := 0; i < spec.Degrades; i++ {
		ai := rng.Intn(len(spec.Nodes))
		bi := rng.Intn(len(spec.Nodes) - 1)
		if bi >= ai {
			bi++
		}
		start := vtime.Time(rng.Float64())
		p.Events = append(p.Events, Event{
			Kind: KindDegradeLink,
			From: spec.Nodes[ai], To: spec.Nodes[bi],
			Factor: 2 + 6*rng.Float64(),
			Start:  start, End: -1,
		})
	}
	for i := 0; i < spec.Drops; i++ {
		p.Events = append(p.Events, Event{
			Kind: KindDropPublish, Rank: rng.Intn(spec.Ranks), Step: step(),
			Count: 1 + rng.Intn(2),
		})
	}
	for i := 0; i < spec.Delays; i++ {
		p.Events = append(p.Events, Event{
			Kind: KindDelayPublish, Rank: rng.Intn(spec.Ranks), Step: step(),
			Delay: vtime.Dur(0.05 + 0.2*rng.Float64()),
		})
	}
	// Memlimit draws come last so plans from pre-memlimit seeds are
	// byte-identical when MemLimits is zero (the fixed-seed chaos
	// acceptance gate depends on this).
	for i := 0; i < spec.MemLimits; i++ {
		lo := spec.MemBytes / 4
		if lo < 1 {
			lo = 1
		}
		limit := lo + rng.Int63n(spec.MemBytes-lo+1)
		start := vtime.Time(rng.Float64())
		p.Events = append(p.Events, Event{
			Kind: KindMemLimit, Worker: rng.Intn(spec.Workers),
			Limit: limit, Start: start,
			End: start + vtime.Time(0.5+rng.Float64()),
		})
	}
	// Job-kill draws come last (after memlimit) for the same reason the
	// memlimit draws do: plans from pre-killjob seeds stay byte-identical
	// when JobKills is zero.
	if spec.JobKills > 0 {
		perm := rng.Perm(len(spec.Tenants))[:spec.JobKills]
		for _, ti := range perm {
			p.Events = append(p.Events, Event{
				Kind: KindKillJob, Tenant: spec.Tenants[ti], Step: step(),
			})
		}
	}
	return p, nil
}
