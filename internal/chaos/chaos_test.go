package chaos

import (
	"reflect"
	"testing"

	"deisago/internal/netsim"
)

func TestPlanDSLRoundTrip(t *testing.T) {
	src := "kill:1@0/3;degrade:2-5:4@0.5-inf;drop:0/2:2;delay:1/4:0.25"
	p, err := ParsePlan(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Events) != 4 {
		t.Fatalf("parsed %d events, want 4", len(p.Events))
	}
	if got := p.String(); got != src {
		t.Fatalf("round trip:\n got %q\nwant %q", got, src)
	}
	p2, err := ParsePlan(p.String())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.Events, p2.Events) {
		t.Fatalf("re-parse differs:\n%+v\n%+v", p.Events, p2.Events)
	}
	kill := p.Events[0]
	if kill.Kind != KindKillWorker || kill.Worker != 1 || kill.Rank != 0 || kill.Step != 3 {
		t.Fatalf("kill event = %+v", kill)
	}
	deg := p.Events[1]
	if deg.Kind != KindDegradeLink || deg.Factor != 4 || deg.Start != 0.5 || deg.End > 0 {
		t.Fatalf("degrade event = %+v", deg)
	}
	drop := p.Events[2]
	if drop.Kind != KindDropPublish || drop.Count != 2 {
		t.Fatalf("drop event = %+v", drop)
	}
	del := p.Events[3]
	if del.Kind != KindDelayPublish || del.Delay != 0.25 {
		t.Fatalf("delay event = %+v", del)
	}
}

func TestMemLimitDSLRoundTrip(t *testing.T) {
	src := "kill:1@0/3;memlimit:2:4096@0.25-1.5;memlimit:0:65536@0-inf"
	p, err := ParsePlan(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.String(); got != src {
		t.Fatalf("round trip:\n got %q\nwant %q", got, src)
	}
	bounded := p.Events[1]
	if bounded.Kind != KindMemLimit || bounded.Worker != 2 || bounded.Limit != 4096 ||
		bounded.Start != 0.25 || bounded.End != 1.5 {
		t.Fatalf("bounded memlimit event = %+v", bounded)
	}
	open := p.Events[2]
	if open.Kind != KindMemLimit || open.Worker != 0 || open.Limit != 65536 || open.End > 0 {
		t.Fatalf("open-ended memlimit event = %+v", open)
	}
}

func TestParsePlanRejectsGarbage(t *testing.T) {
	for _, s := range []string{
		"", "nonsense", "kill:x@y/z", "drop:0/1:0", "degrade:1-2:0@0-1",
		"delay:0/1:-1", "kill:1",
		"memlimit:0", "memlimit:0:0@0-1", "memlimit:0:-5@0-1",
		"memlimit:x:64@0-1", "memlimit:0:64@x-1",
	} {
		if _, err := ParsePlan(s); err == nil {
			t.Errorf("ParsePlan(%q) accepted", s)
		}
	}
}

// TestRandomPlanMemLimitAppendsLast pins the determinism contract: a
// spec with memlimit draws yields a plan whose non-memlimit prefix is
// byte-identical to the same seed's plan without them, so governed and
// ungoverned scenarios share fault schedules.
func TestRandomPlanMemLimitAppendsLast(t *testing.T) {
	base := Spec{
		Workers: 4, Ranks: 4, Steps: 8,
		Nodes: []netsim.NodeID{0, 1, 2, 3},
		Kills: 2, Degrades: 1, Drops: 2, Delays: 1,
	}
	withMem := base
	withMem.MemLimits = 1
	withMem.MemBytes = 1 << 20

	a, err := NewRandomPlan(42, base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRandomPlan(42, withMem)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Events) != len(a.Events)+1 {
		t.Fatalf("memlimit spec added %d events, want 1", len(b.Events)-len(a.Events))
	}
	if !reflect.DeepEqual(a.Events, b.Events[:len(a.Events)]) {
		t.Fatalf("memlimit draw perturbed the base plan:\n%s\n%s", a, b)
	}
	mem := b.Events[len(b.Events)-1]
	if mem.Kind != KindMemLimit || mem.Limit <= 0 || mem.Limit > int64(withMem.MemBytes) ||
		mem.Worker < 0 || mem.Worker >= base.Workers || mem.End <= mem.Start {
		t.Fatalf("memlimit event = %+v", mem)
	}
	if _, err := NewRandomPlan(42, Spec{Workers: 2, Ranks: 1, Steps: 2, MemLimits: 1}); err == nil {
		t.Fatal("memlimit draw without MemBytes accepted")
	}
}

func TestNewRandomPlanDeterministic(t *testing.T) {
	spec := Spec{
		Workers: 4, Ranks: 4, Steps: 8,
		Nodes: []netsim.NodeID{0, 1, 2, 3},
		Kills: 2, Degrades: 1, Drops: 2, Delays: 1,
	}
	a, err := NewRandomPlan(42, spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRandomPlan(42, spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("same seed, different plans:\n%s\n%s", a, b)
	}
	c, err := NewRandomPlan(43, spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() == c.String() {
		t.Fatal("different seeds produced the same plan")
	}
	if got := len(a.Kills()); got != 2 {
		t.Fatalf("kills = %d, want 2", got)
	}
	seen := map[int]bool{}
	for _, w := range a.Kills() {
		if w < 0 || w >= spec.Workers {
			t.Fatalf("kill victim %d out of range", w)
		}
		if seen[w] {
			t.Fatalf("victim %d killed twice", w)
		}
		seen[w] = true
	}
}

func TestNewRandomPlanRejectsTotalKill(t *testing.T) {
	if _, err := NewRandomPlan(1, Spec{Workers: 2, Ranks: 1, Steps: 2, Kills: 2}); err == nil {
		t.Fatal("plan killing every worker accepted")
	}
}
