package chaos_test

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"deisago/internal/chaos"
	"deisago/internal/harness"
)

// TestChaosPlanPreservesResults is the chaos property test: for any
// seeded fault plan over a random scenario shape, the run completes
// with analytics bit-identical to the fault-free run. (Every data kind
// in the external-mode pipeline is recoverable — results recompute from
// lineage, external blocks republish — so no erred outcome is legal
// here; non-recomputable scatter loss is covered by
// TestKillWorkerLosesScatteredData in package dask.)
func TestChaosPlanPreservesResults(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep in -short mode")
	}
	type shape struct {
		Seed          int64
		Ranks, Wrk    int
		Steps, Kills  int
		Drops, Delays int
	}
	cfgGen := func(vals []reflect.Value, rng *rand.Rand) {
		vals[0] = reflect.ValueOf(shape{
			Seed:   rng.Int63n(1 << 30),
			Ranks:  2 + rng.Intn(3),
			Wrk:    2 + rng.Intn(3),
			Steps:  3 + rng.Intn(3),
			Kills:  1 + rng.Intn(2),
			Drops:  rng.Intn(3),
			Delays: rng.Intn(2),
		})
	}
	property := func(s shape) bool {
		opts := harness.QuickOptions()
		opts.Timesteps = s.Steps
		cfg := harness.ChaosScenarioConfig(opts, s.Ranks, s.Wrk)
		spec := harness.ChaosSpec(cfg)
		spec.Kills = s.Kills
		if spec.Kills > s.Wrk-1 {
			spec.Kills = s.Wrk - 1
		}
		spec.Drops = s.Drops
		spec.Delays = s.Delays
		plan, err := chaos.NewRandomPlan(s.Seed, spec)
		if err != nil {
			t.Logf("shape %+v: plan: %v", s, err)
			return false
		}
		report, err := harness.RunChaos(cfg, plan)
		if err != nil {
			t.Logf("shape %+v plan %s: %v", s, plan, err)
			return false
		}
		if !report.Identical {
			t.Logf("shape %+v plan %s: results diverged", s, plan)
			return false
		}
		return true
	}
	// Fixed seed: the sweep is deterministic across runs.
	err := quick.Check(property, &quick.Config{
		MaxCount: 8,
		Rand:     rand.New(rand.NewSource(11)),
		Values:   cfgGen,
	})
	if err != nil {
		t.Fatal(err)
	}
}
