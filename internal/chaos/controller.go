package chaos

import (
	"fmt"
	"sort"
	"sync"

	"deisago/internal/core"
	"deisago/internal/dask"
	"deisago/internal/netsim"
	"deisago/internal/taskgraph"
	"deisago/internal/vtime"
)

// LogEntry is one executed fault, in purely logical coordinates — no
// virtual or wall times — so the log of a seeded run is bit-identical
// across repetitions regardless of goroutine interleaving.
type LogEntry struct {
	Event   int    // index into Plan.Events
	Kind    string // Kind.String() of the event
	Worker  int    // kill: victim (-1 otherwise)
	Rank    int    // triggering rank
	Step    int    // triggering step
	Attempt int    // drop: which publish attempt was lost
	Key     string // drop/delay: block key affected ("" for kills)
}

// String formats one log entry.
func (e LogEntry) String() string {
	switch e.Kind {
	case "kill":
		return fmt.Sprintf("kill worker %d (event %d, rank %d step %d)", e.Worker, e.Event, e.Rank, e.Step)
	case "drop":
		return fmt.Sprintf("drop %s attempt %d (event %d, rank %d step %d)", e.Key, e.Attempt, e.Event, e.Rank, e.Step)
	case "delay":
		return fmt.Sprintf("delay %s (event %d, rank %d step %d)", e.Key, e.Event, e.Rank, e.Step)
	case "memlimit":
		return fmt.Sprintf("memlimit worker %d (event %d)", e.Worker, e.Event)
	case "killjob":
		return fmt.Sprintf("killjob tenant %s from step %d (event %d)", e.Key, e.Step, e.Event)
	}
	return fmt.Sprintf("%s (event %d)", e.Kind, e.Event)
}

type logKey struct {
	event   int
	key     string
	attempt int
}

// Controller executes a plan against one cluster. It implements
// core.PublishInterceptor: kills, drops, and delays all trigger at
// bridge publish points, the only logical clock ranks and the cluster
// share. Install it on every bridge of the scenario.
type Controller struct {
	plan    *Plan
	cluster *dask.Cluster

	mu        sync.Mutex
	killFired map[int]bool // event index -> kill executed
	killErrs  []error
	log       map[logKey]LogEntry
}

// NewController validates the plan against the cluster and returns a
// controller. Kill victims must be distinct, in range, and leave at
// least one surviving worker.
func NewController(plan *Plan, cluster *dask.Cluster) (*Controller, error) {
	if plan == nil || len(plan.Events) == 0 {
		return nil, fmt.Errorf("chaos: empty plan")
	}
	n := cluster.NumWorkers()
	seen := map[int]bool{}
	for i, ev := range plan.Events {
		switch ev.Kind {
		case KindKillWorker:
			if ev.Worker < 0 || ev.Worker >= n {
				return nil, fmt.Errorf("chaos: event %d kills worker %d, cluster has %d", i, ev.Worker, n)
			}
			if seen[ev.Worker] {
				return nil, fmt.Errorf("chaos: worker %d killed twice", ev.Worker)
			}
			seen[ev.Worker] = true
		case KindMemLimit:
			if ev.Worker < 0 || ev.Worker >= n {
				return nil, fmt.Errorf("chaos: event %d squeezes worker %d, cluster has %d", i, ev.Worker, n)
			}
			if ev.Limit <= 0 {
				return nil, fmt.Errorf("chaos: event %d memlimit must be positive, got %d", i, ev.Limit)
			}
		case KindKillJob:
			if ev.Tenant == "" {
				return nil, fmt.Errorf("chaos: event %d killjob needs a tenant", i)
			}
			if ev.Step < 0 {
				return nil, fmt.Errorf("chaos: event %d killjob step %d negative", i, ev.Step)
			}
		}
	}
	if len(seen) >= n {
		return nil, fmt.Errorf("chaos: plan kills all %d workers", n)
	}
	ctrl := &Controller{
		plan:      plan,
		cluster:   cluster,
		killFired: map[int]bool{},
		log:       map[logKey]LogEntry{},
	}
	// Memlimit windows are keyed on virtual time, not publish
	// coordinates, so they install (and log) at construction — the log
	// entry is deterministic regardless of run interleaving. Job kills
	// likewise: the multi-job driver reads them off KillJobs before the
	// jobs start, so the cancellation is a property of the plan, not of
	// run timing, and the entry can be logged here.
	ctrl.mu.Lock()
	for i, ev := range plan.Events {
		switch ev.Kind {
		case KindMemLimit:
			cluster.SetWorkerMemoryWindow(ev.Worker, ev.Limit, ev.Start, ev.End)
			ctrl.record(LogEntry{Event: i, Kind: "memlimit", Worker: ev.Worker, Rank: -1, Step: -1})
		case KindKillJob:
			ctrl.record(LogEntry{Event: i, Kind: "killjob", Worker: -1, Rank: -1,
				Step: ev.Step, Key: ev.Tenant})
		}
	}
	ctrl.mu.Unlock()
	return ctrl, nil
}

// Plan returns the controller's plan.
func (c *Controller) Plan() *Plan { return c.plan }

// OnPublish implements core.PublishInterceptor: it fires pending kill
// events whose (rank, step) trigger matches, then returns the drop/delay
// verdict for this attempt. Decisions depend only on the logical
// coordinates; `now` is used solely to timestamp the kill in virtual
// time.
func (c *Controller) OnPublish(rank, step, attempt int, key taskgraph.Key, now vtime.Time) core.PublishFault {
	c.mu.Lock()
	defer c.mu.Unlock()
	var fault core.PublishFault
	for i, ev := range c.plan.Events {
		switch ev.Kind {
		case KindKillWorker:
			if ev.Rank != rank || ev.Step != step || c.killFired[i] {
				continue
			}
			c.killFired[i] = true
			if err := c.cluster.KillWorker(ev.Worker, now); err != nil {
				c.killErrs = append(c.killErrs, fmt.Errorf("chaos: event %d: %w", i, err))
				continue
			}
			c.record(LogEntry{Event: i, Kind: "kill", Worker: ev.Worker, Rank: rank, Step: step})
		case KindDropPublish:
			if ev.Rank != rank || ev.Step != step || attempt >= ev.Count {
				continue
			}
			fault.Drop = true
			c.record(LogEntry{Event: i, Kind: "drop", Worker: -1, Rank: rank, Step: step,
				Attempt: attempt, Key: string(key)})
		case KindDelayPublish:
			if ev.Rank != rank || ev.Step != step || attempt != 0 {
				continue
			}
			fault.Delay += ev.Delay
			c.record(LogEntry{Event: i, Kind: "delay", Worker: -1, Rank: rank, Step: step,
				Key: string(key)})
		}
	}
	return fault
}

// record must be called with c.mu held.
func (c *Controller) record(e LogEntry) {
	c.log[logKey{event: e.Event, key: e.Key, attempt: e.Attempt}] = e
}

// KillJobs returns the plan's job cancellations as tenant -> earliest
// cancellation step. The multi-job driver consults it before launching
// jobs: a cancelled tenant's analytics select only timesteps before the
// step, so its bridges filter the rest and the job winds down cleanly.
func (c *Controller) KillJobs() map[string]int {
	out := map[string]int{}
	for _, ev := range c.plan.Events {
		if ev.Kind != KindKillJob {
			continue
		}
		if cur, ok := out[ev.Tenant]; !ok || ev.Step < cur {
			out[ev.Tenant] = ev.Step
		}
	}
	return out
}

// InstallLinkFaults registers the plan's degrade events as fault hooks
// on the fabric. Degradation applies in both directions of the named
// link pair within the virtual window.
func (c *Controller) InstallLinkFaults(f *netsim.Fabric) {
	events := make([]Event, 0)
	for _, ev := range c.plan.Events {
		if ev.Kind == KindDegradeLink {
			events = append(events, ev)
		}
	}
	if len(events) == 0 {
		return
	}
	f.AddFaultHook(func(from, to netsim.NodeID, size int64, depart vtime.Time) netsim.FaultVerdict {
		v := netsim.FaultVerdict{SlowFactor: 1}
		for _, ev := range events {
			match := (from == ev.From && to == ev.To) || (from == ev.To && to == ev.From)
			if !match || depart < ev.Start || (ev.End > 0 && depart >= ev.End) {
				continue
			}
			v.SlowFactor *= ev.Factor
		}
		return v
	})
}

// KillErrs returns errors from kill events that could not execute
// (victim already dead, last survivor). A correct plan produces none.
func (c *Controller) KillErrs() []error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]error(nil), c.killErrs...)
}

// PendingKills returns the plan indices of kill events whose (rank,
// step) trigger never occurred — e.g. the rank published fewer steps
// than the plan assumed.
func (c *Controller) PendingKills() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []int
	for i, ev := range c.plan.Events {
		if ev.Kind == KindKillWorker && !c.killFired[i] {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}

// Log returns the executed-fault log, deduplicated and sorted by (plan
// event, key, attempt). Because entries hold only logical coordinates,
// two runs with the same seed and scenario return identical logs.
func (c *Controller) Log() []LogEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]LogEntry, 0, len(c.log))
	for _, e := range c.log {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Event != b.Event {
			return a.Event < b.Event
		}
		if a.Key != b.Key {
			return a.Key < b.Key
		}
		return a.Attempt < b.Attempt
	})
	return out
}
