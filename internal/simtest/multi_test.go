package simtest

import (
	"testing"
)

// A fault-free mixed workload swept across 8 schedules: every tenant's
// analytics must be bit-identical on all of them, and the shared
// scheduler's interleaved transition log must replay cleanly through
// the reference model on every schedule.
func TestExploreMultiSchedulesIdentical(t *testing.T) {
	rep, err := ExploreMulti(DefaultMultiSpec(), Seeds(1, 8), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("multi-tenant schedule sweep not clean: %s", rep.Summary())
	}
	if rep.Schedules != 8 {
		t.Fatalf("ran %d schedules, want 8", rep.Schedules)
	}
	if rep.Reference.Decisions == "" {
		t.Fatal("reference schedule made no tie-break decisions; hooks not exercised")
	}
	if rep.Reference.Model.Records == 0 || rep.Reference.Model.Tasks == 0 {
		t.Fatalf("reference model saw no transitions: %+v", rep.Reference.Model)
	}
}

// The same mixed workload under a killjob fault with the workers
// squeezed by memory governance: cancelling one tenant mid-run must
// also be schedule-invariant, and must change the outcome relative to
// the fault-free sweep (the kill is observable).
func TestExploreMultiKilljobSchedulesIdentical(t *testing.T) {
	clean, err := ExploreMulti(DefaultMultiSpec(), Seeds(1, 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	sp := DefaultMultiSpec()
	sp.MemLimit = 4 << 20
	sp.Plan = "killjob:beta@2"
	rep, err := ExploreMulti(sp, Seeds(50, 6), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("killjob schedule sweep not clean: %s", rep.Summary())
	}
	if rep.Reference.Fingerprint == clean.Reference.Fingerprint {
		t.Fatal("killjob run fingerprints identical to fault-free run; the kill was not observable")
	}
}

// A pinned schedule must reproduce a seeded multi-tenant schedule
// exactly, as for single-job specs.
func TestMultiOverrideReplayMatchesSeededRun(t *testing.T) {
	sp := DefaultMultiSpec()
	sp.Seed = 42
	seeded, err := RunMultiPipeline(sp)
	if err != nil {
		t.Fatal(err)
	}
	if seeded.Decisions == "" {
		t.Fatal("seeded multi run made no decisions")
	}
	sp.Overrides = seeded.Decisions
	replayed, err := RunMultiPipeline(sp)
	if err != nil {
		t.Fatal(err)
	}
	if replayed.Fingerprint != seeded.Fingerprint {
		t.Fatalf("override replay diverged: %s vs %s", replayed.Fingerprint, seeded.Fingerprint)
	}
}
