package simtest

import (
	"reflect"
	"strings"
	"testing"

	"deisago/internal/dask"
)

func TestDdminFindsMinimalSubset(t *testing.T) {
	// Failure needs exactly {3, 7} present.
	items := []int{1, 2, 3, 4, 5, 6, 7, 8}
	fails := func(sub []int) bool {
		has3, has7 := false, false
		for _, v := range sub {
			has3 = has3 || v == 3
			has7 = has7 || v == 7
		}
		return has3 && has7
	}
	shrunk := false
	got := ddmin(items, fails, &shrunk)
	if !shrunk || !reflect.DeepEqual(got, []int{3, 7}) {
		t.Fatalf("ddmin = %v (shrunk=%v), want [3 7]", got, shrunk)
	}
}

func TestDdminEmptyFastPath(t *testing.T) {
	calls := 0
	fails := func(sub []int) bool { calls++; return true }
	shrunk := false
	got := ddmin([]int{1, 2, 3, 4}, fails, &shrunk)
	if len(got) != 0 || calls != 1 {
		t.Fatalf("fast path: got %v in %d calls, want [] in 1", got, calls)
	}
}

func TestDdminSingleItem(t *testing.T) {
	shrunk := false
	got := ddmin([]int{9}, func(sub []int) bool { return len(sub) == 1 }, &shrunk)
	if !reflect.DeepEqual(got, []int{9}) {
		t.Fatalf("single item: got %v", got)
	}
}

// Shrink over a synthetic predicate: the failure needs one specific
// plan clause and one specific tie-break override; everything else must
// be shaved off.
func TestShrinkMinimisesPlanAndOverrides(t *testing.T) {
	needPlan := "kill:0@1/1"
	needTB := dask.Decision{Point: dask.PointReadyPop, Key: "fit-2", N: 3}

	sp := DefaultSpec()
	sp.Plan = "drop:1/2:1;" + needPlan + ";delay:2/0:0.002"
	sp.Overrides = Overrides{
		needTB: 2,
		{Point: dask.PointAssignWorker, Key: "pca", N: 2}: 1,
		{Point: dask.PointSpillVictim, Key: "w1@4", N: 2}: 1,
		{Point: dask.PointFailover, Key: "blk#0", N: 2}:   1,
		{Point: dask.PointReadyPop, Key: "fit-3", N: 4}:   3,
	}.Format()

	fails := func(s Spec) (bool, string) {
		o, err := ParseOverrides(s.Overrides)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(s.Plan, needPlan) && o[needTB] == 2 {
			return true, "synthetic failure"
		}
		return false, ""
	}
	res, err := Shrink(sp, fails)
	if err != nil {
		t.Fatal(err)
	}
	if res.Spec.Plan != needPlan {
		t.Fatalf("minimal plan %q, want %q", res.Spec.Plan, needPlan)
	}
	wantTB := Overrides{needTB: 2}.Format()
	if res.Spec.Overrides != wantTB {
		t.Fatalf("minimal overrides %q, want %q", res.Spec.Overrides, wantTB)
	}
	if res.Failure != "synthetic failure" {
		t.Fatalf("failure %q", res.Failure)
	}
	if res.Runs == 0 {
		t.Fatal("no predicate evaluations counted")
	}
	// The reproducer replays through the same predicate.
	back, err := ParseRepro(res.Repro)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := fails(back); !ok {
		t.Fatalf("reproducer %q does not fail the predicate", res.Repro)
	}
}

func TestShrinkRejectsPassingSpec(t *testing.T) {
	sp := DefaultSpec()
	if _, err := Shrink(sp, func(Spec) (bool, string) { return false, "" }); err == nil {
		t.Fatal("want error for a spec that does not fail")
	}
}

func TestReproRoundTrip(t *testing.T) {
	sp := DefaultSpec()
	sp.MemLimit = 1 << 21
	sp.Plan = "kill:0@1/1;drop:1/2:1"
	sp.Overrides = Overrides{
		{Point: dask.PointReadyPop, Key: "fit-2", N: 3}: 1,
	}.Format()
	line := FormatRepro(sp)
	back, err := ParseRepro(line)
	if err != nil {
		t.Fatal(err)
	}
	back.Trace = nil
	if back != sp {
		t.Fatalf("round trip:\n  in  %+v\n  out %+v\n  line %q", sp, back, line)
	}
}

func TestParseReproErrors(t *testing.T) {
	for _, bad := range []string{
		"",                                     // no spec clause
		"kill:0@1/1",                           // no spec clause
		"spec:4/3",                             // malformed spec
		"spec:4/3/4/1024/0;spec:4/3/4/1024/0",  // duplicate spec
		"spec:4/3/4/1024/0;tb:ready-pop:1:0:k", // bad tb clause
		"spec:4/3/4/1024/0;warp:9",             // unknown chaos clause
	} {
		if _, err := ParseRepro(bad); err == nil {
			t.Fatalf("ParseRepro(%q) accepted", bad)
		}
	}
}
