package simtest

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"testing"

	"deisago/internal/dask"
)

// Mutant self-test: proves the tooling actually catches bugs. Built
// with -tags daskmutant, the scheduler carries a planted off-by-one in
// the worker-lost replan (dask.rebuildDepsWindow drops the first
// dependency). The explorer must flag the failure, and the shrinker
// must reduce the (chaos plan, schedule) pair to a minimal runnable
// reproducer. On production builds (no tag) the same sweep must be
// clean — which also exercises the subprocess runner end to end.
//
// Pipelines run in a subprocess because an invariant violation panics
// inside a rank goroutine, which no in-process recover can reach: the
// helper below re-executes this test binary with the spec in the
// environment and the verdict parsed from its output.

const helperSpecEnv = "SIMTEST_HELPER_SPEC"

// stdoutPrefixWriter relays the breaker's trace to stdout with a
// greppable prefix, one decision per line, unbuffered — so the schedule
// survives the subprocess dying mid-run.
type stdoutPrefixWriter struct{ prefix string }

func (w stdoutPrefixWriter) Write(p []byte) (int, error) {
	fmt.Printf("%s%s", w.prefix, p)
	return len(p), nil
}

// TestPipelineHelper is the subprocess body, not a real test: it runs
// one pipeline spec from the environment and reports the outcome on
// stdout. Without the env var (a normal test sweep) it skips.
func TestPipelineHelper(t *testing.T) {
	raw := os.Getenv(helperSpecEnv)
	if raw == "" {
		t.Skip("subprocess helper for the mutant self-test")
	}
	var sp Spec
	if err := json.Unmarshal([]byte(raw), &sp); err != nil {
		t.Fatalf("helper: bad spec: %v", err)
	}
	sp.Trace = stdoutPrefixWriter{prefix: "SIMTEST_TB "}
	out, err := RunPipeline(sp)
	if err != nil {
		t.Fatalf("SIMTEST_ERR %v", err)
	}
	data, err := json.Marshal(out)
	if err != nil {
		t.Fatalf("helper: marshal outcome: %v", err)
	}
	fmt.Printf("SIMTEST_OK %s\n", data)
}

// helperResult is one subprocess pipeline run.
type helperResult struct {
	out     *Outcome
	trace   []string // tb: clauses streamed before any crash
	failure string   // non-empty if the run failed (panic text included)
}

func runHelper(t *testing.T, sp Spec) helperResult {
	t.Helper()
	data, err := json.Marshal(sp)
	if err != nil {
		t.Fatalf("marshal spec: %v", err)
	}
	cmd := exec.Command(os.Args[0], "-test.run=^TestPipelineHelper$", "-test.count=1")
	cmd.Env = append(os.Environ(), helperSpecEnv+"="+string(data))
	outB, runErr := cmd.CombinedOutput()
	var res helperResult
	var okLine string
	for _, line := range strings.Split(string(outB), "\n") {
		switch {
		case strings.HasPrefix(line, "SIMTEST_TB "):
			res.trace = append(res.trace, strings.TrimPrefix(line, "SIMTEST_TB "))
		case strings.HasPrefix(line, "SIMTEST_OK "):
			okLine = strings.TrimPrefix(line, "SIMTEST_OK ")
		}
	}
	if runErr != nil || okLine == "" {
		// An invariant panic buries its one-line verdict under the full
		// transition log; keep the verdict end, not the log tail.
		s := string(outB)
		if i := strings.Index(s, "invariant violated"); i >= 0 {
			if end := len(s); end > i+2000 {
				s = s[i : i+2000]
			} else {
				s = s[i:]
			}
			res.failure = strings.TrimSpace(s)
		} else {
			res.failure = tail(s, 4000)
		}
		if res.failure == "" {
			res.failure = fmt.Sprintf("helper produced no output (%v)", runErr)
		}
		return res
	}
	var out Outcome
	if err := json.Unmarshal([]byte(okLine), &out); err != nil {
		res.failure = fmt.Sprintf("helper outcome unparseable: %v", err)
		return res
	}
	res.out = &out
	return res
}

// subprocessRunner adapts the helper into the explorer's Runner shape.
func subprocessRunner(t *testing.T) Runner {
	return func(sp Spec) (*Outcome, error) {
		r := runHelper(t, sp)
		if r.failure != "" {
			return nil, errors.New(r.failure)
		}
		return r.out, nil
	}
}

func tail(s string, n int) string {
	if len(s) <= n {
		return strings.TrimSpace(s)
	}
	return strings.TrimSpace(s[len(s)-n:])
}

// mutantSpec is the hunting ground: a compound fault plan whose kill
// fires mid-run, when partial-fit chains have unfinished upstream
// dependencies — exactly where the planted off-by-one miscounts.
func mutantSpec() Spec {
	sp := DefaultSpec()
	sp.Plan = "drop:1/2:1;kill:0@1/1;delay:2/0:0.002"
	return sp
}

func TestMutantCaughtAndShrunk(t *testing.T) {
	run := subprocessRunner(t)
	seeds := Seeds(1, 4)
	rep, err := Explore(mutantSpec(), seeds, run)
	if err != nil {
		t.Fatal(err)
	}

	if !dask.MutantScheduler {
		// Production scheduler: the same sweep must be clean. This also
		// proves the subprocess runner reports healthy runs correctly.
		if !rep.OK() {
			t.Fatalf("production build failed the mutant sweep: %s", rep.Summary())
		}
		return
	}

	// Mutant build: the explorer must find the bug.
	seed, failure, ok := rep.Failed(seeds)
	if !ok {
		t.Fatalf("explorer missed the planted mutant: %s", rep.Summary())
	}
	if !strings.Contains(failure, "invariant violated") {
		t.Errorf("failure is not an invariant violation:\n%.400s", failure)
	}

	// Pin the failing schedule from the crashed run's streamed trace,
	// then delta-debug the (plan, schedule) pair.
	sp := mutantSpec()
	sp.Seed = seed
	r := runHelper(t, sp)
	if r.failure == "" {
		t.Fatal("failing seed passed on re-run")
	}
	sp.Overrides = strings.Join(r.trace, ";")
	fails := FailsOnError(run)
	if stillFails, _ := fails(sp); !stillFails {
		// The pinned prefix diverged before the crash point; the bug
		// does not need the schedule, so shrink from the default one.
		sp.Overrides = ""
	}
	res, err := Shrink(sp, fails)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(splitClauses(res.Spec.Plan)); got != 1 {
		t.Errorf("minimal plan %q has %d clauses, want 1", res.Spec.Plan, got)
	}
	if !strings.HasPrefix(res.Spec.Plan, "kill:") {
		t.Errorf("minimal plan %q does not reduce to the kill", res.Spec.Plan)
	}
	if res.Spec.Overrides != "" {
		t.Logf("minimal reproducer still pins %d tie-breaks", len(splitClauses(res.Spec.Overrides)))
	}

	// The emitted DSL line must replay to the same failure.
	stillFails, msg, err := ReplayRepro(res.Repro, run)
	if err != nil {
		t.Fatal(err)
	}
	if !stillFails {
		t.Fatalf("reproducer %q passed on replay", res.Repro)
	}
	if !strings.Contains(msg, "invariant violated") {
		t.Errorf("replayed failure lost the invariant violation:\n%.400s", msg)
	}
	t.Logf("mutant shrunk in %d runs to: %s", res.Runs, res.Repro)
}
