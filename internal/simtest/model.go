package simtest

import (
	"fmt"

	"deisago/internal/dask"
	"deisago/internal/taskgraph"
)

// Reference model: a pure, single-threaded replay of the production
// scheduler's audited transition log. It shares no code with the
// scheduler — the legality table below is written from the state
// machine's spec, not from the implementation — so a scheduler bug that
// records an impossible transition is caught even if the in-process
// auditor's invariants happen to hold at every scan point.
//
// The model tracks, per key: the current state and owning worker; plus
// the scheduler's dead-worker view (from the log's worker-death
// markers) and the released-key set. Every record must (a) start from
// the tracked state, (b) be a legal (op, from, to) edge, and (c) leave
// worker/bytes fields consistent with the destination state. After each
// worker-lost replan completes, no key may remain resident on or
// assigned to a dead worker.

// noState mirrors the log's creation sentinel (dask's unexported
// stateNone): any negative From marks task creation.
const noState = dask.State(-1)

// Report summarises a successful replay.
type Report struct {
	Records int // records replayed (including worker-death markers)
	Tasks   int // distinct keys seen
	Deaths  int // worker-death markers
	// Final counts tasks by their state at end of log (released keys
	// are dropped from the tally when released, re-added if re-created).
	Final map[dask.State]int
}

// modelTask is the model's view of one key.
type modelTask struct {
	state  dask.State
	worker int
}

// Replay cross-checks a complete transition log. truncated is the
// scheduler's discarded-entry count (Result.AuditTruncated); a
// truncated log cannot be replayed from a known start state, so it is
// refused rather than half-checked.
func Replay(log []dask.Transition, truncated int64) (*Report, error) {
	if truncated > 0 {
		return nil, fmt.Errorf("simtest: transition log truncated (%d entries discarded); raise the log cap or shorten the run", truncated)
	}
	tasks := map[taskgraph.Key]*modelTask{}
	released := map[taskgraph.Key]bool{}
	dead := map[int]bool{}
	deaths := 0
	// deadDirty marks an in-progress worker-lost replan: residency on
	// the dead worker is allowed mid-op (the replan is moving tasks off
	// it) and re-checked as soon as a record from any other op appears.
	deadDirty := false

	checkDeadResidency := func(i int) error {
		for k, t := range tasks {
			if (t.state == dask.StateMemory || t.state == dask.StateProcessing) && dead[t.worker] {
				return fmt.Errorf("simtest: record %d: key %q left %s on dead worker %d after worker-lost replan", i, k, t.state, t.worker)
			}
		}
		return nil
	}

	for i, tr := range log {
		if tr.WorkerDeath() {
			if tr.Worker < 0 {
				return nil, fmt.Errorf("simtest: record %d: death marker with invalid worker %d", i, tr.Worker)
			}
			if dead[tr.Worker] {
				return nil, fmt.Errorf("simtest: record %d: worker %d died twice", i, tr.Worker)
			}
			dead[tr.Worker] = true
			deaths++
			deadDirty = true
			continue
		}
		if deadDirty && tr.Op != "worker-lost" {
			if err := checkDeadResidency(i); err != nil {
				return nil, err
			}
			deadDirty = false
		}

		t := tasks[tr.Key]
		creation := tr.From < 0
		// The scatter-creation quirk: a non-external update-data
		// registers the task directly in memory with no creation record;
		// the first record's From is the zero-value StateWaiting.
		scatterCreation := tr.Op == "update-data" && t == nil &&
			tr.From == dask.StateWaiting && tr.To == dask.StateMemory
		switch {
		case creation, scatterCreation:
			if t != nil {
				return nil, fmt.Errorf("simtest: record %d: key %q created while already tracked in %s", i, tr.Key, t.state)
			}
			t = &modelTask{}
			tasks[tr.Key] = t
			delete(released, tr.Key)
		case t == nil:
			return nil, fmt.Errorf("simtest: record %d: transition for unknown key %q (%s -> %s)", i, tr.Key, tr.From, tr.To)
		case t.state != tr.From:
			return nil, fmt.Errorf("simtest: record %d: key %q recorded from %s but model tracks %s", i, tr.Key, tr.From, t.state)
		}

		if !legalEdge(tr.Op, tr.From, tr.To, creation || scatterCreation) {
			return nil, fmt.Errorf("simtest: record %d: illegal edge %s -> %s under op %q for key %q", i, tr.From, tr.To, tr.Op, tr.Key)
		}

		// Field consistency at the destination state.
		switch tr.To {
		case dask.StateMemory:
			if tr.Worker < 0 {
				return nil, fmt.Errorf("simtest: record %d: key %q in memory without an owner", i, tr.Key)
			}
			if dead[tr.Worker] {
				return nil, fmt.Errorf("simtest: record %d: key %q placed in memory on dead worker %d", i, tr.Key, tr.Worker)
			}
			if tr.Bytes < 0 {
				return nil, fmt.Errorf("simtest: record %d: key %q in memory with negative size %d", i, tr.Key, tr.Bytes)
			}
		case dask.StateProcessing:
			if tr.Worker < 0 {
				return nil, fmt.Errorf("simtest: record %d: key %q processing without an assignee", i, tr.Key)
			}
			if dead[tr.Worker] {
				return nil, fmt.Errorf("simtest: record %d: key %q assigned to dead worker %d", i, tr.Key, tr.Worker)
			}
		case dask.StateWaiting, dask.StateReady, dask.StateExternal:
			if tr.Op != "release" && tr.Worker != -1 {
				return nil, fmt.Errorf("simtest: record %d: key %q in %s still owned by worker %d", i, tr.Key, tr.To, tr.Worker)
			}
		}

		if tr.Op == "release" {
			delete(tasks, tr.Key)
			released[tr.Key] = true
			continue
		}
		t.state = tr.To
		t.worker = tr.Worker
	}
	if deadDirty {
		if err := checkDeadResidency(len(log)); err != nil {
			return nil, err
		}
	}

	rep := &Report{Records: len(log), Deaths: deaths, Final: map[dask.State]int{}}
	for _, t := range tasks {
		rep.Final[t.state]++
	}
	rep.Tasks = len(tasks)
	for range released {
		rep.Tasks++
	}
	return rep, nil
}

// legalEdge is the model's transition table: every (op, from, to) edge
// the production state machine may take, and nothing else.
func legalEdge(op string, from, to dask.State, creation bool) bool {
	if creation {
		switch op {
		case "submit":
			return to == dask.StateWaiting
		case "create-external":
			return to == dask.StateExternal
		case "update-data":
			// Scatter-creation quirk (see Replay): recorded waiting→memory.
			return from == dask.StateWaiting && to == dask.StateMemory
		}
		return false
	}
	switch op {
	case "submit":
		// Wiring a new batch can run zero-dep tasks immediately and
		// cascade an already-erred dependency into the batch.
		return edge(from, to,
			p{dask.StateWaiting, dask.StateReady},
			p{dask.StateReady, dask.StateProcessing},
			p{dask.StateWaiting, dask.StateErred})
	case "update-data":
		return edge(from, to,
			p{dask.StateExternal, dask.StateMemory},
			p{dask.StateWaiting, dask.StateReady},
			p{dask.StateReady, dask.StateProcessing})
	case "task-finished":
		return edge(from, to,
			p{dask.StateProcessing, dask.StateMemory},
			p{dask.StateWaiting, dask.StateReady},
			p{dask.StateReady, dask.StateProcessing})
	case "task-erred":
		// The error cascades through dependents in any non-terminal
		// state, including results already in memory.
		return to == dask.StateErred &&
			(from == dask.StateWaiting || from == dask.StateReady ||
				from == dask.StateProcessing || from == dask.StateMemory)
	case "worker-lost":
		return edge(from, to,
			p{dask.StateMemory, dask.StateWaiting},  // recomputable from lineage
			p{dask.StateMemory, dask.StateExternal}, // producer republishes
			p{dask.StateMemory, dask.StateErred},    // plain scatter, gone for good
			p{dask.StateProcessing, dask.StateWaiting},
			p{dask.StateReady, dask.StateWaiting},
			p{dask.StateWaiting, dask.StateErred}, // lost-scatter error cascade
			p{dask.StateReady, dask.StateErred},
			p{dask.StateProcessing, dask.StateErred},
			p{dask.StateMemory, dask.StateErred},
			p{dask.StateWaiting, dask.StateReady}, // replan re-drains the heap
			p{dask.StateReady, dask.StateProcessing})
	case "release":
		return from == to
	}
	return false
}

// p is one legal (from, to) pair.
type p struct{ from, to dask.State }

func edge(from, to dask.State, legal ...p) bool {
	for _, e := range legal {
		if e.from == from && e.to == to {
			return true
		}
	}
	return false
}
