package simtest

import (
	"strings"
	"testing"
)

// The acceptance sweep: 16 schedules of the fault-free Fig-2b pipeline,
// every benign tie permuted, must produce bit-identical analytics and
// deterministic counters, with the invariant auditor on and the
// reference model replaying every transition log.
func TestExploreSchedulesIdentical(t *testing.T) {
	rep, err := Explore(DefaultSpec(), Seeds(1, 16), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("schedule sweep not clean: %s", rep.Summary())
	}
	if rep.Schedules != 16 {
		t.Fatalf("ran %d schedules, want 16", rep.Schedules)
	}
	// The sweep is vacuous if no ties actually fired: at least one
	// schedule must have made non-trivial decisions, and at least two
	// schedules must have made different ones (otherwise the seeds all
	// collapsed to one schedule).
	if rep.Reference.Decisions == "" {
		t.Fatal("reference schedule made no tie-break decisions; hooks not exercised")
	}
	distinct := map[string]bool{}
	for _, o := range rep.Outcomes {
		distinct[o.Decisions] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("all 16 seeds produced the same schedule; explorer is not permuting (decisions: %.120s…)",
			rep.Reference.Decisions)
	}
	if rep.Reference.Model.Records == 0 || rep.Reference.Model.Tasks == 0 {
		t.Fatalf("reference model saw no transitions: %+v", rep.Reference.Model)
	}
}

// Same sweep under a compound fault plan (worker kill + dropped and
// delayed publishes) with memory governance squeezing the workers: the
// recovery paths (failover, republish, spill) must also be schedule-
// invariant.
func TestExploreChaosSchedulesIdentical(t *testing.T) {
	sp := DefaultSpec()
	sp.MemLimit = 3 * sp.BlockBytes
	sp.Plan = "kill:0@1/1;drop:1/2:1;delay:2/0:0.002"
	rep, err := Explore(sp, Seeds(100, 6), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("chaos schedule sweep not clean: %s", rep.Summary())
	}
	if rep.Reference.Model.Deaths != 1 {
		t.Fatalf("model saw %d worker deaths, want 1", rep.Reference.Model.Deaths)
	}
	if rep.Reference.Decisions == "" {
		t.Fatal("chaos sweep made no tie-break decisions; hooks not exercised")
	}
}

// A pinned schedule must reproduce the seeded schedule exactly: replay
// the recorded decisions through an OverrideBreaker and compare
// fingerprints.
func TestOverrideReplayMatchesSeededRun(t *testing.T) {
	sp := DefaultSpec()
	sp.Seed = 42
	seeded, err := RunPipeline(sp)
	if err != nil {
		t.Fatal(err)
	}
	if seeded.Decisions == "" {
		t.Fatal("seeded run made no decisions")
	}
	sp.Overrides = seeded.Decisions
	replayed, err := RunPipeline(sp)
	if err != nil {
		t.Fatal(err)
	}
	if replayed.Fingerprint != seeded.Fingerprint {
		t.Fatalf("override replay diverged from seeded run:\n  seeded   %s\n  replayed %s",
			seeded.Fingerprint, replayed.Fingerprint)
	}
}

func TestExploreRejectsEmptySeeds(t *testing.T) {
	if _, err := Explore(DefaultSpec(), nil, nil); err == nil {
		t.Fatal("want error for empty seed list")
	}
}

func TestSpecRejectsBadPlan(t *testing.T) {
	sp := DefaultSpec()
	sp.Plan = "explode:everything"
	if _, err := RunPipeline(sp); err == nil || !strings.Contains(err.Error(), "spec plan") {
		t.Fatalf("want plan parse error, got %v", err)
	}
}
