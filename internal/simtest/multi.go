package simtest

import (
	"crypto/sha256"
	"fmt"
	"io"

	"deisago/internal/chaos"
	"deisago/internal/harness"
)

// Multi-tenant schedule explorer: the same sweep as Explore, but over a
// mixed workload of concurrent tenant pipelines sharing one platform.
// The shared scheduler interleaves the tenants' tasks (weighted
// fair-share), so the schedule space is much larger than a single
// job's — and the invariant is stronger: not only must each tenant's
// analytics be bit-identical across schedules, the interleaved
// transition log must replay cleanly through the reference model, which
// sees every tenant's keys in one stream.

// MultiJob sizes one tenant of a multi-spec. It mirrors
// harness.JobSpec's observable fields, JSON-friendly.
type MultiJob struct {
	Name       string  `json:"name"`
	Weight     float64 `json:"weight,omitempty"`
	Ranks      int     `json:"ranks"`
	Timesteps  int     `json:"timesteps"`
	BlockBytes int64   `json:"block_bytes"`
}

// MultiSpec describes one multi-tenant run: the workload mix, the
// platform shape, the fault plan, and the schedule seed or override
// set.
type MultiSpec struct {
	Jobs    []MultiJob `json:"jobs"`
	Workers int        `json:"workers"`
	// MemLimit, when positive, turns on worker memory governance on the
	// shared cluster.
	MemLimit int64 `json:"mem_limit,omitempty"`
	// MaxConcurrent caps admission (0 = all jobs run at once).
	MaxConcurrent int `json:"max_concurrent,omitempty"`
	// Plan is the chaos DSL ("" = fault-free). killjob clauses target
	// tenants by name; worker kills are rejected by the harness.
	Plan string `json:"plan,omitempty"`
	// Seed picks the schedule via a SeededBreaker. Ignored when
	// Overrides is non-empty.
	Seed int64 `json:"seed"`
	// Overrides replays an explicit schedule (tb: clauses).
	Overrides string `json:"overrides,omitempty"`

	// Trace receives tie-break decisions as they are made (seeded
	// schedules only). Not serialised.
	Trace io.Writer `json:"-"`
}

// DefaultMultiSpec is the explorer's standard mixed workload: two
// tenants of different shapes and weights contending for three workers.
func DefaultMultiSpec() MultiSpec {
	return MultiSpec{
		Jobs: []MultiJob{
			{Name: "alpha", Weight: 2, Ranks: 2, Timesteps: 3, BlockBytes: 1 << 20},
			{Name: "beta", Weight: 1, Ranks: 1, Timesteps: 4, BlockBytes: 1 << 20},
		},
		Workers: 3,
	}
}

// Config translates the spec to a harness multi-job configuration.
func (sp MultiSpec) Config() (harness.MultiJobConfig, error) {
	jobs := make([]harness.JobSpec, len(sp.Jobs))
	for i, j := range sp.Jobs {
		jobs[i] = harness.JobSpec{
			Name: j.Name, Weight: j.Weight,
			Ranks: j.Ranks, Timesteps: j.Timesteps, BlockBytes: j.BlockBytes,
		}
	}
	cfg := harness.MultiJobConfig{
		Jobs:              jobs,
		Workers:           sp.Workers,
		Seed:              1,
		MaxConcurrent:     sp.MaxConcurrent,
		WorkerMemoryLimit: sp.MemLimit,
		EnableAudit:       true,
	}
	if sp.Plan != "" {
		plan, err := chaos.ParsePlan(sp.Plan)
		if err != nil {
			return cfg, fmt.Errorf("simtest: multi spec plan: %w", err)
		}
		cfg.ChaosPlan = plan
	}
	return cfg, nil
}

// RunMultiPipeline executes one multi-tenant spec end to end: run the
// mixed workload with the requested tie-breaking, replay the shared
// scheduler's interleaved transition log through the reference model,
// and fingerprint the per-tenant observables.
func RunMultiPipeline(sp MultiSpec) (*Outcome, error) {
	cfg, err := sp.Config()
	if err != nil {
		return nil, err
	}
	var seeded *SeededBreaker
	if sp.Overrides != "" {
		o, err := ParseOverrides(sp.Overrides)
		if err != nil {
			return nil, err
		}
		cfg.TieBreak = OverrideBreaker{O: o}
	} else {
		seeded = NewSeededBreaker(sp.Seed)
		if sp.Trace != nil {
			seeded.SetTrace(sp.Trace)
		}
		cfg.TieBreak = seeded
	}
	res, err := harness.RunMultiJob(cfg)
	if err != nil {
		return nil, err
	}
	rep, err := Replay(res.AuditLog, res.AuditTruncated)
	if err != nil {
		return nil, err
	}
	out := &Outcome{
		Fingerprint: MultiFingerprint(res),
		Decisions:   sp.Overrides,
		Model:       rep,
	}
	if seeded != nil {
		out.Decisions = seeded.Decisions().Format()
	}
	return out, nil
}

// MultiFingerprint digests a multi-tenant run's schedule-invariant
// observables: every tenant's analytics fingerprint (themselves digests
// of components, singular values, explained variance and block
// accounting) in job order, plus the executed fault log. Timing,
// admission interleaving and per-worker counters are excluded.
func MultiFingerprint(res *harness.MultiJobResult) string {
	h := sha256.New()
	for _, j := range res.Jobs {
		io.WriteString(h, j.Name)
		io.WriteString(h, "=")
		io.WriteString(h, j.Fingerprint)
		io.WriteString(h, "\n")
	}
	for _, e := range res.ChaosLog {
		io.WriteString(h, e.String())
		io.WriteString(h, "\n")
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// MultiRunner executes one multi-spec and reports its outcome.
type MultiRunner func(MultiSpec) (*Outcome, error)

// ExploreMulti runs the multi-spec across the given schedule seeds and
// compares every outcome against the first successful one, exactly as
// Explore does for single-job specs.
func ExploreMulti(sp MultiSpec, seeds []int64, run MultiRunner) (*ExploreReport, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("simtest: explore needs at least one seed")
	}
	if run == nil {
		run = RunMultiPipeline
	}
	rep := &ExploreReport{Failures: map[int64]string{}}
	for _, seed := range seeds {
		s := sp
		s.Seed = seed
		s.Overrides = ""
		out, err := run(s)
		if err != nil {
			rep.Failures[seed] = err.Error()
			rep.Outcomes = append(rep.Outcomes, nil)
			continue
		}
		rep.Schedules++
		rep.Outcomes = append(rep.Outcomes, out)
		if rep.Reference == nil {
			rep.Reference = out
			continue
		}
		if out.Fingerprint != rep.Reference.Fingerprint {
			rep.Divergent = append(rep.Divergent, seed)
		}
	}
	return rep, nil
}
