package simtest

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strings"

	"deisago/internal/chaos"
	"deisago/internal/harness"
)

// Schedule explorer: runs the Fig-2b pipeline (DEISA3) across K
// schedules that differ only in how benign scheduling ties were broken,
// and asserts the observable outcome — analytics bits, schedule-
// invariant counters, executed fault log — is identical on every one.
// Any divergence means a scheduling decision that was supposed to be
// benign leaked into the results; any auditor panic or reference-model
// rejection means a schedule reached a state the fault-free rules
// forbid.

// Spec describes one pipeline run: the scenario shape, the fault plan,
// and the schedule (seed or explicit override set). It is JSON-friendly
// so a subprocess runner can ship it through the environment.
type Spec struct {
	Ranks      int   `json:"ranks"`
	Workers    int   `json:"workers"`
	Timesteps  int   `json:"timesteps"`
	BlockBytes int64 `json:"block_bytes"`
	// MemLimit, when positive, turns on worker memory governance.
	MemLimit int64 `json:"mem_limit,omitempty"`
	// Plan is the chaos DSL ("" = fault-free run).
	Plan string `json:"plan,omitempty"`
	// Seed picks the schedule via a SeededBreaker. Ignored when
	// Overrides is non-empty.
	Seed int64 `json:"seed"`
	// Overrides replays an explicit schedule: semicolon-joined tb:
	// clauses (see FormatDecision). Decisions not listed take candidate
	// 0. The shrinker minimises this field.
	Overrides string `json:"overrides,omitempty"`

	// Trace, when non-nil, receives each tie-break decision as it is
	// made (seeded schedules only). Not serialised; used by subprocess
	// runners to recover the schedule from a crashed run via stdout.
	Trace io.Writer `json:"-"`
}

// DefaultSpec is the explorer's standard scenario: small enough that a
// 16-schedule sweep stays test-suite fast, big enough to exercise
// multi-worker ties, governance, and failover.
func DefaultSpec() Spec {
	return Spec{Ranks: 4, Workers: 3, Timesteps: 4, BlockBytes: 1 << 20}
}

// Config translates the spec to a harness configuration.
func (sp Spec) Config() (harness.Config, error) {
	cfg := harness.Config{
		System:            harness.DEISA3,
		Ranks:             sp.Ranks,
		Workers:           sp.Workers,
		Timesteps:         sp.Timesteps,
		BlockBytes:        sp.BlockBytes,
		Seed:              1,
		WorkerMemoryLimit: sp.MemLimit,
		EnableAudit:       true,
	}
	if sp.Plan != "" {
		plan, err := chaos.ParsePlan(sp.Plan)
		if err != nil {
			return cfg, fmt.Errorf("simtest: spec plan: %w", err)
		}
		cfg.ChaosPlan = plan
	}
	return cfg, nil
}

// Outcome is everything RunPipeline observes about one schedule.
type Outcome struct {
	// Fingerprint digests the run's schedule-invariant observables:
	// analytics bits, deterministic counters, executed fault log.
	Fingerprint string `json:"fingerprint"`
	// Decisions is the schedule actually taken, as tb: DSL clauses —
	// from the seeded breaker's record, or echoed from Spec.Overrides.
	Decisions string `json:"decisions"`
	// Model is the reference-model replay report for the audit log.
	Model *Report `json:"model"`
}

// RunPipeline executes one spec end to end: run the harness with the
// requested tie-breaking, replay the transition log through the
// reference model, and fingerprint the observables. A scheduler
// invariant violation panics (the auditor is always on here); a model
// rejection returns an error.
func RunPipeline(sp Spec) (*Outcome, error) {
	cfg, err := sp.Config()
	if err != nil {
		return nil, err
	}
	var seeded *SeededBreaker
	if sp.Overrides != "" {
		o, err := ParseOverrides(sp.Overrides)
		if err != nil {
			return nil, err
		}
		cfg.TieBreak = OverrideBreaker{O: o}
	} else {
		seeded = NewSeededBreaker(sp.Seed)
		if sp.Trace != nil {
			seeded.SetTrace(sp.Trace)
		}
		cfg.TieBreak = seeded
	}
	res, err := harness.Run(cfg)
	if err != nil {
		return nil, err
	}
	rep, err := Replay(res.AuditLog, res.AuditTruncated)
	if err != nil {
		return nil, err
	}
	out := &Outcome{
		Fingerprint: Fingerprint(res),
		Decisions:   sp.Overrides,
		Model:       rep,
	}
	if seeded != nil {
		out.Decisions = seeded.Decisions().Format()
	}
	return out, nil
}

// Fingerprint digests a run's schedule-invariant observables. Values
// that legitimately vary with the schedule (per-worker counters, retry
// totals, timing gauges) are excluded; everything here must be
// bit-identical across all legal schedules of the same spec.
func Fingerprint(res *harness.Result) string {
	h := sha256.New()
	w := func(vs ...uint64) {
		var buf [8]byte
		for _, v := range vs {
			binary.LittleEndian.PutUint64(buf[:], v)
			h.Write(buf[:])
		}
	}
	if res.Components != nil {
		for _, d := range res.Components.Shape() {
			w(uint64(d))
		}
		for _, v := range res.Components.Data() {
			w(math.Float64bits(v))
		}
	}
	for _, v := range res.SingularValues {
		w(math.Float64bits(v))
	}
	for _, v := range res.ExplainedVariance {
		w(math.Float64bits(v))
	}
	c := res.Counters
	w(uint64(c.GraphsSubmitted), uint64(c.TasksRegistered),
		uint64(c.ExternalCreated))
	w(uint64(res.BlocksSent), uint64(res.BlocksSkipped))
	for _, e := range res.ChaosLog {
		io.WriteString(h, e.String())
		io.WriteString(h, "\n")
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// Runner executes one spec and reports its outcome. The explorer's
// default (nil) runner is in-process RunPipeline; the mutant self-test
// substitutes a subprocess runner so auditor panics in scheduler
// goroutines become Failure strings instead of killing the test binary.
type Runner func(Spec) (*Outcome, error)

// ExploreReport is the result of a schedule sweep.
type ExploreReport struct {
	Schedules int        // schedules run
	Reference *Outcome   // outcome of the first schedule
	Outcomes  []*Outcome // per-seed outcomes, index-aligned with seeds
	// Divergent lists seeds whose fingerprint differed from the
	// reference; Failures lists seeds whose run failed outright
	// (auditor panic under a subprocess runner, model rejection).
	Divergent []int64
	Failures  map[int64]string
}

// OK reports a fully clean sweep.
func (r *ExploreReport) OK() bool { return len(r.Divergent) == 0 && len(r.Failures) == 0 }

// Failed returns the first failing seed and its failure, in seed-slice
// order, for handing to the shrinker.
func (r *ExploreReport) Failed(seeds []int64) (int64, string, bool) {
	for _, s := range seeds {
		if msg, ok := r.Failures[s]; ok {
			return s, msg, true
		}
	}
	return 0, "", false
}

// Explore runs the spec across the given schedule seeds and compares
// every outcome against the first successful one. run == nil uses the
// in-process pipeline.
func Explore(sp Spec, seeds []int64, run Runner) (*ExploreReport, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("simtest: explore needs at least one seed")
	}
	if run == nil {
		run = RunPipeline
	}
	rep := &ExploreReport{Failures: map[int64]string{}}
	for _, seed := range seeds {
		s := sp
		s.Seed = seed
		s.Overrides = ""
		out, err := run(s)
		if err != nil {
			rep.Failures[seed] = err.Error()
			rep.Outcomes = append(rep.Outcomes, nil)
			continue
		}
		rep.Schedules++
		rep.Outcomes = append(rep.Outcomes, out)
		if rep.Reference == nil {
			rep.Reference = out
			continue
		}
		if out.Fingerprint != rep.Reference.Fingerprint {
			rep.Divergent = append(rep.Divergent, seed)
		}
	}
	return rep, nil
}

// Seeds returns k distinct schedule seeds starting at base.
func Seeds(base int64, k int) []int64 {
	out := make([]int64, k)
	for i := range out {
		out[i] = base + int64(i)
	}
	return out
}

// Summary formats the sweep result for logs.
func (r *ExploreReport) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "simtest: %d schedules", r.Schedules)
	if r.OK() {
		fmt.Fprintf(&b, ", all outcomes identical (fingerprint %.12s…)", r.Reference.Fingerprint)
		return b.String()
	}
	if len(r.Divergent) > 0 {
		fmt.Fprintf(&b, ", %d divergent seeds %v", len(r.Divergent), r.Divergent)
	}
	for seed, msg := range r.Failures {
		fmt.Fprintf(&b, "\n  seed %d failed: %s", seed, firstLine(msg))
	}
	return b.String()
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
