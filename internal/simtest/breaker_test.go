package simtest

import (
	"strings"
	"testing"

	"deisago/internal/dask"
)

func TestSeededBreakerDeterministic(t *testing.T) {
	ds := []dask.Decision{
		{Point: dask.PointReadyPop, Key: "fit-3", N: 4},
		{Point: dask.PointAssignWorker, Key: "pca", N: 3},
		{Point: dask.PointSpillVictim, Key: "w1@0", N: 2},
		{Point: dask.PointFailover, Key: "blk#1", N: 2},
	}
	a, b := NewSeededBreaker(7), NewSeededBreaker(7)
	for _, d := range ds {
		pa, pb := a.Pick(d), b.Pick(d)
		if pa != pb {
			t.Fatalf("same seed diverged on %+v: %d vs %d", d, pa, pb)
		}
		if pa < 0 || pa >= d.N {
			t.Fatalf("pick %d out of range for %+v", pa, d)
		}
	}
	// Call order must not matter: a third breaker seeing the decisions
	// reversed picks identically.
	c := NewSeededBreaker(7)
	for i := len(ds) - 1; i >= 0; i-- {
		if got, want := c.Pick(ds[i]), a.Pick(ds[i]); got != want {
			t.Fatalf("reversed order diverged on %+v: %d vs %d", ds[i], got, want)
		}
	}
	// Different seeds must disagree somewhere across the space.
	d2 := NewSeededBreaker(8)
	same := true
	for _, d := range ds {
		if d2.Pick(d) != a.Pick(d) {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 picked identically on every decision")
	}
}

func TestSeededBreakerTrivialDecision(t *testing.T) {
	b := NewSeededBreaker(1)
	if got := b.Pick(dask.Decision{Point: dask.PointReadyPop, Key: "k", N: 1}); got != 0 {
		t.Fatalf("N=1 pick = %d, want 0", got)
	}
	if len(b.Decisions()) != 0 {
		t.Fatal("trivial decisions must not be recorded")
	}
}

func TestDecisionDSLRoundTrip(t *testing.T) {
	d := dask.Decision{Point: dask.PointFailover, Key: "deisa-t3-b2#1", N: 3}
	s := FormatDecision(d, 2)
	got, pick, err := ParseDecision(s)
	if err != nil {
		t.Fatal(err)
	}
	if got != d || pick != 2 {
		t.Fatalf("round trip: got %+v pick %d from %q", got, pick, s)
	}
	// Keys may contain colons (the final field swallows the rest).
	d.Key = "a:b:c"
	got, _, err = ParseDecision(FormatDecision(d, 0))
	if err != nil || got.Key != "a:b:c" {
		t.Fatalf("colon key round trip: %+v, %v", got, err)
	}
}

func TestParseDecisionErrors(t *testing.T) {
	for _, bad := range []string{
		"", "kill:0@1/1", "tb:ready-pop:x:0:k", "tb:ready-pop:1:0:k",
		"tb:ready-pop:3:3:k", "tb:ready-pop:3:-1:k", "tb:ready-pop:3",
	} {
		if _, _, err := ParseDecision(bad); err == nil {
			t.Fatalf("ParseDecision(%q) accepted", bad)
		}
	}
}

func TestOverridesFormatRoundTrip(t *testing.T) {
	o := Overrides{
		{Point: dask.PointReadyPop, Key: "b", N: 3}:     2,
		{Point: dask.PointReadyPop, Key: "a", N: 2}:     1,
		{Point: dask.PointAssignWorker, Key: "a", N: 4}: 3,
	}
	s := o.Format()
	// Entries order is (point, key, n): assign-worker before ready-pop,
	// then key order.
	want := "tb:assign-worker:4:3:a;tb:ready-pop:2:1:a;tb:ready-pop:3:2:b"
	if s != want {
		t.Fatalf("Format() = %q, want %q", s, want)
	}
	back, err := ParseOverrides(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(o) {
		t.Fatalf("round trip lost entries: %v", back)
	}
	for d, p := range o {
		if back[d] != p {
			t.Fatalf("round trip changed %+v: %d -> %d", d, p, back[d])
		}
	}
	if empty, err := ParseOverrides(""); err != nil || len(empty) != 0 {
		t.Fatalf("empty parse: %v, %v", empty, err)
	}
}

func TestOverrideBreakerDefaultsToZero(t *testing.T) {
	d := dask.Decision{Point: dask.PointReadyPop, Key: "k", N: 5}
	b := OverrideBreaker{O: Overrides{d: 3}}
	if got := b.Pick(d); got != 3 {
		t.Fatalf("override pick = %d, want 3", got)
	}
	other := dask.Decision{Point: dask.PointReadyPop, Key: "other", N: 5}
	if got := b.Pick(other); got != 0 {
		t.Fatalf("unlisted pick = %d, want 0", got)
	}
}

func TestSeededBreakerTrace(t *testing.T) {
	var sb strings.Builder
	b := NewSeededBreaker(3)
	b.SetTrace(&sb)
	d := dask.Decision{Point: dask.PointSpillVictim, Key: "w0@2", N: 3}
	pick := b.Pick(d)
	got, gotPick, err := ParseDecision(strings.TrimSpace(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got != d || gotPick != pick {
		t.Fatalf("trace line %q does not round-trip the decision", sb.String())
	}
}
