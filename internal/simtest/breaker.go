// Package simtest is the schedule-space correctness tooling for the
// deisa stack: a seeded explorer that permutes every benign scheduling
// tie (ready-heap pop order, worker choice, spill victim, bridge
// failover target) and asserts bit-identical analytics across explored
// schedules; a pure reference model of the task-state machine that
// replays the production scheduler's transition log; and a delta-
// debugging shrinker that reduces a failing (chaos plan, schedule)
// pair to a minimal runnable reproducer in a one-line DSL.
package simtest

import (
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"

	"deisago/internal/dask"
)

// SeededBreaker resolves every scheduling tie pseudo-randomly as a pure
// function of (seed, decision point, context key, candidate count) —
// never of call order — so concurrently deciding goroutines (bridges,
// the scheduler) cannot perturb which candidate a given logical
// decision takes. Different seeds explore different schedules; the
// breaker records every non-trivial decision so a failing schedule can
// be replayed and shrunk as an explicit override set.
type SeededBreaker struct {
	seed int64

	mu    sync.Mutex
	seen  map[dask.Decision]int
	trace io.Writer
}

// NewSeededBreaker returns a breaker for one explored schedule.
func NewSeededBreaker(seed int64) *SeededBreaker {
	return &SeededBreaker{seed: seed, seen: map[dask.Decision]int{}}
}

// SetTrace streams every non-trivial decision to w as one DSL clause
// per line, as it is made. The mutant self-test uses this to recover
// the tie-break trace from a run that dies mid-pipeline (the in-memory
// record dies with it). Set before the run starts.
func (b *SeededBreaker) SetTrace(w io.Writer) { b.trace = w }

// Pick implements dask.TieBreaker.
func (b *SeededBreaker) Pick(d dask.Decision) int {
	if d.N <= 1 {
		return 0
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s|%d", b.seed, d.Point, d.Key, d.N)
	pick := int(h.Sum64() % uint64(d.N))
	b.mu.Lock()
	b.seen[d] = pick
	if b.trace != nil {
		fmt.Fprintf(b.trace, "%s\n", FormatDecision(d, pick))
	}
	b.mu.Unlock()
	return pick
}

// Decisions returns every non-trivial tie this breaker resolved, as an
// override set replaying the same schedule through an OverrideBreaker.
func (b *SeededBreaker) Decisions() Overrides {
	b.mu.Lock()
	defer b.mu.Unlock()
	o := make(Overrides, len(b.seen))
	for d, p := range b.seen {
		o[d] = p
	}
	return o
}

// Overrides forces specific picks for specific decisions. Decisions not
// present take candidate 0 — the first in the canonical candidate
// order — so a shrunk override set stays a complete schedule
// description: dropped entries revert to a fixed default, not to
// nondeterminism.
type Overrides map[dask.Decision]int

// OverrideBreaker replays an override set. The zero value (no
// overrides) picks candidate 0 everywhere.
type OverrideBreaker struct{ O Overrides }

// Pick implements dask.TieBreaker.
func (b OverrideBreaker) Pick(d dask.Decision) int {
	if p, ok := b.O[d]; ok {
		return p
	}
	return 0
}

// FormatDecision renders one forced pick as a DSL clause:
//
//	tb:<point>:<n>:<pick>:<key>
//
// The key is the final field so it may contain ':'s.
func FormatDecision(d dask.Decision, pick int) string {
	return fmt.Sprintf("tb:%s:%d:%d:%s", d.Point, d.N, pick, d.Key)
}

// ParseDecision parses one tb: clause back into a decision and pick.
func ParseDecision(s string) (dask.Decision, int, error) {
	parts := strings.SplitN(s, ":", 5)
	if len(parts) != 5 || parts[0] != "tb" {
		return dask.Decision{}, 0, fmt.Errorf("simtest: clause %q: want tb:<point>:<n>:<pick>:<key>", s)
	}
	n, err := strconv.Atoi(parts[2])
	if err != nil || n < 2 {
		return dask.Decision{}, 0, fmt.Errorf("simtest: clause %q: bad candidate count %q", s, parts[2])
	}
	pick, err := strconv.Atoi(parts[3])
	if err != nil || pick < 0 || pick >= n {
		return dask.Decision{}, 0, fmt.Errorf("simtest: clause %q: bad pick %q", s, parts[3])
	}
	return dask.Decision{Point: parts[1], Key: parts[4], N: n}, pick, nil
}

// OverrideEntry is one (decision, pick) pair in a deterministic order,
// the unit the shrinker deletes.
type OverrideEntry struct {
	D    dask.Decision
	Pick int
}

// Entries returns the override set sorted by (point, key, n).
func (o Overrides) Entries() []OverrideEntry {
	out := make([]OverrideEntry, 0, len(o))
	for d, p := range o {
		out = append(out, OverrideEntry{D: d, Pick: p})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].D, out[j].D
		if a.Point != b.Point {
			return a.Point < b.Point
		}
		if a.Key != b.Key {
			return a.Key < b.Key
		}
		return a.N < b.N
	})
	return out
}

// FromEntries rebuilds an override set from entries.
func FromEntries(es []OverrideEntry) Overrides {
	o := make(Overrides, len(es))
	for _, e := range es {
		o[e.D] = e.Pick
	}
	return o
}

// Format renders the override set as semicolon-joined DSL clauses in
// Entries order ("" for an empty set).
func (o Overrides) Format() string {
	es := o.Entries()
	parts := make([]string, len(es))
	for i, e := range es {
		parts[i] = FormatDecision(e.D, e.Pick)
	}
	return strings.Join(parts, ";")
}

// ParseOverrides parses semicolon-joined tb: clauses; empty input means
// no overrides.
func ParseOverrides(s string) (Overrides, error) {
	o := Overrides{}
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		d, p, err := ParseDecision(part)
		if err != nil {
			return nil, err
		}
		o[d] = p
	}
	return o, nil
}
