package simtest

import (
	"strings"
	"testing"

	"deisago/internal/dask"
)

func TestModelAcceptsLifecycle(t *testing.T) {
	log := []dask.Transition{
		{Op: "create-external", Key: "x0", From: noState, To: dask.StateExternal, Worker: -1},
		{Op: "submit", Key: "fit", From: noState, To: dask.StateWaiting, Worker: -1},
		{Op: "update-data", Key: "x0", From: dask.StateExternal, To: dask.StateMemory, Worker: 0, Bytes: 64},
		{Op: "update-data", Key: "fit", From: dask.StateWaiting, To: dask.StateReady, Worker: -1},
		{Op: "update-data", Key: "fit", From: dask.StateReady, To: dask.StateProcessing, Worker: 1},
		{Op: "task-finished", Key: "fit", From: dask.StateProcessing, To: dask.StateMemory, Worker: 1, Bytes: 8},
		{Op: "release", Key: "x0", From: dask.StateMemory, To: dask.StateMemory, Worker: 0},
	}
	rep, err := Replay(log, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tasks != 2 || rep.Records != len(log) {
		t.Fatalf("report %+v, want 2 tasks over %d records", rep, len(log))
	}
	if rep.Final[dask.StateMemory] != 1 {
		t.Fatalf("final states %v, want one memory task (released x0 dropped)", rep.Final)
	}
}

func TestModelAcceptsScatterCreationQuirk(t *testing.T) {
	// A plain scatter's first record is waiting→memory with no creation
	// sentinel — the zero value of State is StateWaiting.
	log := []dask.Transition{
		{Op: "update-data", Key: "blk", From: dask.StateWaiting, To: dask.StateMemory, Worker: 2, Bytes: 32},
	}
	if _, err := Replay(log, 0); err != nil {
		t.Fatal(err)
	}
}

func TestModelAcceptsWorkerLossReplan(t *testing.T) {
	log := []dask.Transition{
		{Op: "create-external", Key: "x0", From: noState, To: dask.StateExternal, Worker: -1},
		{Op: "update-data", Key: "x0", From: dask.StateExternal, To: dask.StateMemory, Worker: 0, Bytes: 64},
		{Op: "worker-lost", From: noState, To: noState, Worker: 0}, // death marker
		{Op: "worker-lost", Key: "x0", From: dask.StateMemory, To: dask.StateExternal, Worker: -1},
		{Op: "update-data", Key: "x0", From: dask.StateExternal, To: dask.StateMemory, Worker: 1, Bytes: 64},
	}
	rep, err := Replay(log, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Deaths != 1 {
		t.Fatalf("deaths %d, want 1", rep.Deaths)
	}
}

func TestModelRejectsBadLogs(t *testing.T) {
	ext := dask.Transition{Op: "create-external", Key: "k", From: noState, To: dask.StateExternal, Worker: -1}
	mem := dask.Transition{Op: "update-data", Key: "k", From: dask.StateExternal, To: dask.StateMemory, Worker: 0, Bytes: 8}
	death0 := dask.Transition{Op: "worker-lost", From: noState, To: noState, Worker: 0}
	cases := []struct {
		name string
		log  []dask.Transition
		want string
	}{
		{"illegal edge", []dask.Transition{
			ext,
			{Op: "task-finished", Key: "k", From: dask.StateExternal, To: dask.StateMemory, Worker: 0},
		}, "illegal edge"},
		{"wrong from-state", []dask.Transition{
			ext,
			{Op: "update-data", Key: "k", From: dask.StateMemory, To: dask.StateMemory, Worker: 0},
		}, "model tracks"},
		{"unknown key", []dask.Transition{
			{Op: "task-finished", Key: "ghost", From: dask.StateProcessing, To: dask.StateMemory, Worker: 0},
		}, "unknown key"},
		{"double creation", []dask.Transition{ext, ext}, "already tracked"},
		{"memory without owner", []dask.Transition{
			ext,
			{Op: "update-data", Key: "k", From: dask.StateExternal, To: dask.StateMemory, Worker: -1},
		}, "without an owner"},
		{"memory on dead worker", []dask.Transition{
			ext, death0,
			{Op: "update-data", Key: "k", From: dask.StateExternal, To: dask.StateMemory, Worker: 0},
		}, "dead worker"},
		{"stale resident after replan", []dask.Transition{
			ext, mem, death0,
			// Replan ends without moving k off worker 0; next op exposes it.
			{Op: "submit", Key: "t", From: noState, To: dask.StateWaiting, Worker: -1},
		}, "left memory on dead worker"},
		{"stale resident at end of log", []dask.Transition{ext, mem, death0}, "left memory on dead worker"},
		{"double death", []dask.Transition{death0, death0}, "died twice"},
		{"waiting with owner", []dask.Transition{
			{Op: "submit", Key: "t", From: noState, To: dask.StateWaiting, Worker: 3},
		}, "still owned"},
		{"negative bytes", []dask.Transition{
			ext,
			{Op: "update-data", Key: "k", From: dask.StateExternal, To: dask.StateMemory, Worker: 0, Bytes: -1},
		}, "negative size"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Replay(tc.log, 0)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}

func TestModelRefusesTruncatedLog(t *testing.T) {
	if _, err := Replay(nil, 7); err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("want truncation refusal, got %v", err)
	}
}
