package simtest

import (
	"fmt"
	"strings"
)

// Reproducer DSL: a shrunk failure is emitted as one semicolon-joined
// line that fully determines a pipeline run —
//
//	spec:<ranks>/<workers>/<steps>/<blockbytes>/<memlimit>;
//	<chaos clauses...>;<tb clauses...>
//
// The spec clause pins the scenario shape; chaos clauses are the
// fault-plan DSL of package chaos (kill:, degrade:, drop:, delay:,
// memlimit:); tb clauses pin tie-break decisions (see FormatDecision).
// ParseRepro routes each clause by prefix, so the three sublanguages
// mix freely in one line and a reproducer pastes straight back into a
// test or the shrinker's replay check.

// FormatRepro renders a spec as a one-line reproducer.
func FormatRepro(sp Spec) string {
	parts := []string{fmt.Sprintf("spec:%d/%d/%d/%d/%d",
		sp.Ranks, sp.Workers, sp.Timesteps, sp.BlockBytes, sp.MemLimit)}
	parts = append(parts, splitClauses(sp.Plan)...)
	parts = append(parts, splitClauses(sp.Overrides)...)
	return strings.Join(parts, ";")
}

// ParseRepro parses a reproducer line back into a runnable spec.
func ParseRepro(line string) (Spec, error) {
	var sp Spec
	var plan, tbs []string
	sawSpec := false
	for _, clause := range splitClauses(line) {
		switch {
		case strings.HasPrefix(clause, "spec:"):
			if sawSpec {
				return sp, fmt.Errorf("simtest: repro %q: duplicate spec clause", line)
			}
			n, err := fmt.Sscanf(clause, "spec:%d/%d/%d/%d/%d",
				&sp.Ranks, &sp.Workers, &sp.Timesteps, &sp.BlockBytes, &sp.MemLimit)
			if err != nil || n != 5 {
				return sp, fmt.Errorf("simtest: repro clause %q: want spec:R/W/T/B/M", clause)
			}
			sawSpec = true
		case strings.HasPrefix(clause, "tb:"):
			if _, _, err := ParseDecision(clause); err != nil {
				return sp, err
			}
			tbs = append(tbs, clause)
		default:
			plan = append(plan, clause)
		}
	}
	if !sawSpec {
		return sp, fmt.Errorf("simtest: repro %q: missing spec clause", line)
	}
	sp.Plan = strings.Join(plan, ";")
	sp.Overrides = strings.Join(tbs, ";")
	// Validate the chaos clauses eagerly so a bad reproducer fails at
	// parse time, not replay time.
	if _, err := sp.Config(); err != nil {
		return sp, err
	}
	return sp, nil
}

// ReplayRepro parses and runs a reproducer line, returning whether it
// still fails and the failure text. run == nil uses the in-process
// pipeline.
func ReplayRepro(line string, run Runner) (bool, string, error) {
	sp, err := ParseRepro(line)
	if err != nil {
		return false, "", err
	}
	fails, msg := FailsOnError(run)(sp)
	return fails, msg, nil
}
