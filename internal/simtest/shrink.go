package simtest

import (
	"fmt"
	"strings"
)

// Shrinker: delta-debugs a failing (chaos plan, schedule) pair down to
// a minimal reproducer. Both dimensions are lists of clauses — fault
// events and forced tie-breaks — so the classic ddmin algorithm applies
// to each; the shrinker alternates dimensions until neither loses a
// clause, then emits the survivor as a one-line runnable DSL string
// (see FormatRepro).

// Pred decides whether a spec still fails, returning the failure text
// when it does. It must be deterministic: the same spec must fail (or
// pass) on every call, which the pipeline guarantees for pinned
// schedules.
type Pred func(Spec) (bool, string)

// FailsOnError adapts a Runner into the standard predicate: the spec
// fails iff the runner errors (auditor panic under a subprocess runner,
// reference-model rejection, harness error).
func FailsOnError(run Runner) Pred {
	if run == nil {
		run = RunPipeline
	}
	return func(sp Spec) (bool, string) {
		_, err := run(sp)
		if err != nil {
			return true, err.Error()
		}
		return false, ""
	}
}

// ShrinkResult is a minimised reproducer.
type ShrinkResult struct {
	Spec    Spec   // minimal failing spec (plan and overrides shrunk)
	Repro   string // the spec as a one-line runnable DSL
	Failure string // failure text of the minimal spec
	Runs    int    // predicate evaluations spent shrinking
}

// Shrink minimises a failing spec. The schedule must already be pinned:
// sp.Overrides holds the explicit tie-break clauses of the failing
// schedule (possibly empty — then only the plan shrinks). Returns an
// error if the input spec does not fail, since there is nothing to
// shrink.
func Shrink(sp Spec, fails Pred) (*ShrinkResult, error) {
	runs := 0
	check := func(s Spec) (bool, string) {
		runs++
		return fails(s)
	}
	ok, failure := check(sp)
	if !ok {
		return nil, fmt.Errorf("simtest: spec to shrink does not fail")
	}

	planClauses := splitClauses(sp.Plan)
	tbEntries, err := ParseOverrides(sp.Overrides)
	if err != nil {
		return nil, err
	}
	entries := tbEntries.Entries()

	build := func(plan []string, tbs []OverrideEntry) Spec {
		s := sp
		s.Plan = strings.Join(plan, ";")
		s.Overrides = FromEntries(tbs).Format()
		return s
	}

	for {
		shrunk := false
		planClauses = ddmin(planClauses, func(cs []string) bool {
			ok, msg := check(build(cs, entries))
			if ok {
				failure = msg
			}
			return ok
		}, &shrunk)
		entries = ddmin(entries, func(es []OverrideEntry) bool {
			ok, msg := check(build(planClauses, es))
			if ok {
				failure = msg
			}
			return ok
		}, &shrunk)
		if !shrunk {
			break
		}
	}

	min := build(planClauses, entries)
	return &ShrinkResult{
		Spec:    min,
		Repro:   FormatRepro(min),
		Failure: failure,
		Runs:    runs,
	}, nil
}

// splitClauses splits a semicolon-joined DSL string into clauses.
func splitClauses(s string) []string {
	var out []string
	for _, c := range strings.Split(s, ";") {
		if c = strings.TrimSpace(c); c != "" {
			out = append(out, c)
		}
	}
	return out
}

// ddmin is Zeller's delta-debugging minimisation: given a failing list,
// find a 1-minimal sublist that still fails. fails must be true for the
// input list. Sets *shrunk if the result is shorter than the input.
func ddmin[T any](items []T, fails func([]T) bool, shrunk *bool) []T {
	if len(items) == 0 {
		return items
	}
	// Fast path: the failure may not need this dimension at all.
	if fails(nil) {
		*shrunk = true
		return nil
	}
	n := 2
	for len(items) >= 2 {
		chunk := (len(items) + n - 1) / n
		reduced := false
		// Try each subset.
		for i := 0; i < len(items); i += chunk {
			end := i + chunk
			if end > len(items) {
				end = len(items)
			}
			sub := items[i:end]
			if len(sub) < len(items) && fails(sub) {
				items = append([]T(nil), sub...)
				n = 2
				reduced = true
				*shrunk = true
				break
			}
		}
		if reduced {
			continue
		}
		// Try each complement.
		for i := 0; i < len(items); i += chunk {
			end := i + chunk
			if end > len(items) {
				end = len(items)
			}
			comp := append(append([]T(nil), items[:i]...), items[end:]...)
			if len(comp) < len(items) && fails(comp) {
				items = comp
				if n > 2 {
					n--
				}
				reduced = true
				*shrunk = true
				break
			}
		}
		if reduced {
			continue
		}
		if n >= len(items) {
			break
		}
		n *= 2
		if n > len(items) {
			n = len(items)
		}
	}
	return items
}
