// Multifield: one simulation publishes several fields with independent
// contracts — the "external tasks are more general" direction of the
// paper's §5 (multi-physics codes, digital-twin workflows).
//
// The simulation exposes temperature and velocity fields; the analytics
// subscribes to the whole temperature timeline but only the final
// velocity snapshot. Each bridge filters locally per array.
//
//	go run ./examples/multifield
package main

import (
	"fmt"
	"log"
	"math"
	"sync"

	"deisago/internal/array"
	"deisago/internal/core"
	"deisago/internal/dask"
	"deisago/internal/ndarray"
	"deisago/internal/netsim"
	"deisago/internal/taskgraph"
)

const (
	ranks     = 4
	timesteps = 6
	bx, by    = 8, 8
)

func main() {
	fabric := netsim.New(netsim.DefaultConfig(), ranks+4)
	cluster := dask.NewCluster(fabric, dask.DefaultConfig(), 0,
		[]netsim.NodeID{2, 3})
	defer cluster.Close()

	mkVA := func(name string) *core.VirtualArray {
		return &core.VirtualArray{
			Name:    name,
			Size:    []int{timesteps, bx, by * ranks},
			Subsize: []int{1, bx, by},
			TimeDim: 0,
		}
	}
	temp, vel := mkVA("temperature"), mkVA("velocity")

	var wg sync.WaitGroup
	var tempTrend []float64
	var velMax float64

	wg.Add(1)
	go func() {
		defer wg.Done()
		d := core.Connect(cluster, 1)
		set, err := d.GetDeisaArrays()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("published deisa arrays: %v\n", set.Names())
		daT, _ := set.Get("temperature")
		daV, _ := set.Get("velocity")
		daT.SelectAll()
		daV.Select( // only the last timestep of the velocity field
			array.Range{Start: timesteps - 1, Stop: timesteps},
			array.Range{Start: 0, Stop: bx},
			array.Range{Start: 0, Stop: by * ranks},
		)
		if _, err := set.ValidateContract(); err != nil {
			log.Fatal(err)
		}

		g := taskgraph.New()
		// Per-timestep global temperature mean (a trend line).
		var trendKeys []taskgraph.Key
		for t := 0; t < timesteps; t++ {
			var deps []taskgraph.Key
			for b := 0; b < ranks; b++ {
				deps = append(deps, daT.VA.BlockKey([]int{t, 0, b}))
			}
			key := taskgraph.Key(fmt.Sprintf("t-mean-%d", t))
			g.AddFn(key, deps, func(in []any) (any, error) {
				sum, n := 0.0, 0.0
				for _, v := range in {
					a := v.(*ndarray.Array)
					sum += a.Sum()
					n += float64(a.Size())
				}
				return sum / n, nil
			}, 1e-4)
			trendKeys = append(trendKeys, key)
		}
		// Final-step velocity maximum.
		var velDeps []taskgraph.Key
		for b := 0; b < ranks; b++ {
			velDeps = append(velDeps, daV.VA.BlockKey([]int{timesteps - 1, 0, b}))
		}
		g.AddFn("v-max", velDeps, func(in []any) (any, error) {
			m := math.Inf(-1)
			for _, v := range in {
				a := v.(*ndarray.Array)
				if x := a.MaxAxis(0).MaxAxis(0).MaxAxis(0).At(); x > m {
					m = x
				}
			}
			return m, nil
		}, 1e-4)

		targets := append(append([]taskgraph.Key{}, trendKeys...), "v-max")
		futs, err := d.Client().Submit(g, targets)
		if err != nil {
			log.Fatal(err)
		}
		vals, err := d.Client().Gather(futs)
		if err != nil {
			log.Fatal(err)
		}
		for _, v := range vals[:timesteps] {
			tempTrend = append(tempTrend, v.(float64))
		}
		velMax = vals[timesteps].(float64)
	}()

	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			b := core.NewBridge(core.BridgeConfig{
				Rank: r, Cluster: cluster, Node: netsim.NodeID(4 + r%2),
				HeartbeatInterval: math.Inf(1), Mode: core.ModeExternal,
			})
			if err := b.DeclareArray(temp); err != nil {
				log.Fatal(err)
			}
			if err := b.DeclareArray(vel); err != nil {
				log.Fatal(err)
			}
			now, err := b.Init(0)
			if err != nil {
				log.Fatal(err)
			}
			for t := 0; t < timesteps; t++ {
				tb := ndarray.New(1, bx, by)
				tb.Fill(20 + float64(t)*1.5) // warming trend
				vb := ndarray.New(1, bx, by)
				vb.Fill(float64(r) + 0.1*float64(t))
				now, _, err = b.Publish("temperature", []int{t, 0, r}, tb, now+0.1)
				if err != nil {
					log.Fatal(err)
				}
				now, _, err = b.Publish("velocity", []int{t, 0, r}, vb, now)
				if err != nil {
					log.Fatal(err)
				}
			}
			sent, skipped := b.Stats()
			fmt.Printf("rank %d: %d blocks sent, %d filtered by contracts\n", r, sent, skipped)
		}(r)
	}
	wg.Wait()

	fmt.Printf("\ntemperature trend (global mean per step): ")
	for _, v := range tempTrend {
		fmt.Printf("%.1f ", v)
	}
	fmt.Printf("\nfinal-step velocity max: %.1f\n", velMax)
}
