// Heat2D + in situ incremental PCA: the paper's end-to-end workflow
// (Listing 2), at a laptop-friendly scale.
//
// A Heat2D simulation runs on the MPI substrate, publishes its field
// through deisa bridges every timestep, and a Dask-like analytics client
// fits a multidimensional incremental PCA on the data as it is produced —
// the whole analytics graph submitted before the first timestep exists.
//
//	go run ./examples/heat2d-ipca
package main

import (
	"fmt"
	"log"

	"deisago/internal/harness"
)

func main() {
	cfg := harness.Config{
		System:     harness.DEISA3,
		Ranks:      8,
		Workers:    4,
		Timesteps:  10,
		BlockBytes: 32 << 20, // each rank's block models 32 MiB
		Seed:       1,
	}
	res, err := harness.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Heat2D + in situ incremental PCA (DEISA3 / external tasks)")
	fmt.Printf("  ranks=%d workers=%d timesteps=%d block=%d MiB\n",
		cfg.Ranks, cfg.Workers, cfg.Timesteps, cfg.BlockBytes>>20)
	fmt.Println()
	fmt.Printf("simulation compute  : %7.3f s/iteration\n", res.SimStepMean)
	fmt.Printf("coupling (scatter)  : %7.3f s/iteration  (%.0f MiB/s per process)\n",
		res.CommMean, res.SimBandwidthMiBps())
	fmt.Printf("analytics duration  : %7.3f s  (includes waiting for simulation data)\n",
		res.AnalyticsTime)
	fmt.Println()
	fmt.Println("incremental PCA results (computed on the real simulation data):")
	fmt.Printf("  singular values     : %v\n", res.SingularValues)
	fmt.Printf("  explained variance  : %v\n", res.ExplainedVariance)
	k, f := res.Components.Dim(0), res.Components.Dim(1)
	fmt.Printf("  components          : %d × %d matrix; first row starts [%.4f %.4f %.4f ...]\n",
		k, f, res.Components.At(0, 0), res.Components.At(0, 1), res.Components.At(0, 2))
	fmt.Println()
	fmt.Printf("scheduler traffic   : %d external tasks, %d graphs, %d queue ops, %d heartbeats\n",
		res.Counters.ExternalCreated, res.Counters.GraphsSubmitted,
		res.Counters.QueueOps, res.Counters.Heartbeats)
}
