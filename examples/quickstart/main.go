// Quickstart: couple a toy two-rank "simulation" with distributed
// analytics through deisa external tasks.
//
// The producer side publishes one block per rank per timestep; the
// consumer side declares what it needs, signs the contract, submits an
// analytics graph BEFORE any data exists, and gathers the result once
// the simulation has produced everything.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"
	"sync"

	"deisago/internal/core"
	"deisago/internal/dask"
	"deisago/internal/ndarray"
	"deisago/internal/netsim"
	"deisago/internal/taskgraph"
)

const (
	ranks     = 2
	timesteps = 4
	blockX    = 8
	blockY    = 8
)

func main() {
	// A small fabric: scheduler on node 0, client on node 1, two workers
	// on nodes 2-3, the two simulation ranks on nodes 4-5.
	fabric := netsim.New(netsim.DefaultConfig(), 6)
	cluster := dask.NewCluster(fabric, dask.DefaultConfig(), 0,
		[]netsim.NodeID{2, 3})
	defer cluster.Close()

	// The virtual array: (time, X, Y) with one block per rank along Y.
	va := &core.VirtualArray{
		Name:    "field",
		Size:    []int{timesteps, blockX, blockY * ranks},
		Subsize: []int{1, blockX, blockY},
		TimeDim: 0,
	}

	var wg sync.WaitGroup
	var mean, std float64

	// ---- Consumer (analytics client) --------------------------------
	wg.Add(1)
	go func() {
		defer wg.Done()
		d := core.Connect(cluster, 1)
		set, err := d.GetDeisaArrays()
		if err != nil {
			log.Fatal(err)
		}
		da, err := set.Get("field")
		if err != nil {
			log.Fatal(err)
		}
		da.SelectAll() // gt = arrays["field"][...]
		if _, err := set.ValidateContract(); err != nil {
			log.Fatal(err)
		}

		// Build a mean/std graph over every future block — ahead of time.
		g := taskgraph.New()
		keys := da.Selection().Keys()
		g.AddFn("stats", keys, func(in []any) (any, error) {
			var sum, sum2, n float64
			for _, v := range in {
				arr := v.(*ndarray.Array)
				for _, x := range arr.Copy().Data() {
					sum += x
					sum2 += x * x
					n++
				}
			}
			m := sum / n
			return []float64{m, math.Sqrt(sum2/n - m*m)}, nil
		}, 1e-4)
		futs, err := d.Client().Submit(g, []taskgraph.Key{"stats"})
		if err != nil {
			log.Fatal(err)
		}
		vals, err := d.Client().Gather(futs)
		if err != nil {
			log.Fatal(err)
		}
		out := vals[0].([]float64)
		mean, std = out[0], out[1]
	}()

	// ---- Producer (simulation ranks) ---------------------------------
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			bridge := core.NewBridge(core.BridgeConfig{
				Rank:              r,
				Cluster:           cluster,
				Node:              netsim.NodeID(4 + r),
				HeartbeatInterval: math.Inf(1), // DEISA3: no heartbeats
				Mode:              core.ModeExternal,
			})
			if err := bridge.DeclareArray(va); err != nil {
				log.Fatal(err)
			}
			now, err := bridge.Init(0)
			if err != nil {
				log.Fatal(err)
			}
			for t := 0; t < timesteps; t++ {
				block := ndarray.New(1, blockX, blockY)
				block.Fill(float64(t + r)) // stand-in for real physics
				now, _, err = bridge.Publish("field", []int{t, 0, r}, block, now+0.1)
				if err != nil {
					log.Fatal(err)
				}
			}
			fmt.Printf("rank %d finished publishing at t=%.3fs (virtual)\n", r, now)
		}(r)
	}

	wg.Wait()
	fmt.Printf("in-transit analytics result: mean=%.4f std=%.4f\n", mean, std)
	snap := cluster.Counters().Snapshot()
	fmt.Printf("external tasks created: %d, graphs submitted: %d\n",
		snap.ExternalCreated, snap.GraphsSubmitted)
}
