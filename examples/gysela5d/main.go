// Gysela-style 5-D compression: the paper's motivating application
// (§3, citing Asahi et al.) compresses the 5-dimensional distribution
// function produced by the Gysela fusion code with PCA. This example
// couples a synthetic 5-D producer with an in-transit incremental PCA
// and reports the achieved compression.
//
// The distribution function f(t, r, θ, φ, v∥) is decomposed over ranks
// along r; every timestep each rank publishes its 4-D block, and the
// analytics folds (r, θ, φ) into samples and v∥ into features before
// feeding the incremental PCA — all declared ahead of time, as external
// tasks.
//
//	go run ./examples/gysela5d
package main

import (
	"fmt"
	"log"
	"math"
	"sync"

	"deisago/internal/core"
	"deisago/internal/dask"
	"deisago/internal/ml"
	"deisago/internal/ndarray"
	"deisago/internal/netsim"
	"deisago/internal/taskgraph"
)

const (
	ranks      = 4
	timesteps  = 8
	nR         = 8 // per-rank radial extent
	nTheta     = 6
	nPhi       = 4
	nVpar      = 16
	components = 3
)

// distribution synthesizes a smooth drifting Maxwellian-like block: a
// low-rank structure in v∥ that PCA compresses well.
func distribution(step, rank, r, th, ph, v int) float64 {
	vv := (float64(v) - float64(nVpar)/2) / 4
	drift := 0.3*float64(step) + 0.1*float64(rank*nR+r)
	base := math.Exp(-(vv - 0.2*drift) * (vv - 0.2*drift))
	mod := 1 + 0.2*math.Sin(2*math.Pi*float64(th)/nTheta)*math.Cos(2*math.Pi*float64(ph)/nPhi)
	return base * mod
}

func main() {
	fabric := netsim.New(netsim.DefaultConfig(), ranks+4)
	cluster := dask.NewCluster(fabric, dask.DefaultConfig(), 0,
		[]netsim.NodeID{2, 3})
	defer cluster.Close()

	va := &core.VirtualArray{
		Name:    "f5d",
		Size:    []int{timesteps, nR * ranks, nTheta, nPhi, nVpar},
		Subsize: []int{1, nR, nTheta, nPhi, nVpar},
		TimeDim: 0,
	}

	var wg sync.WaitGroup
	var est *ml.IncrementalPCA

	wg.Add(1)
	go func() {
		defer wg.Done()
		d := core.Connect(cluster, 1)
		set, err := d.GetDeisaArrays()
		if err != nil {
			log.Fatal(err)
		}
		da, err := set.Get("f5d")
		if err != nil {
			log.Fatal(err)
		}
		da.SelectAll()
		if _, err := set.ValidateContract(); err != nil {
			log.Fatal(err)
		}

		// Ahead-of-time graph: per (step, block) fold 5-D → 2-D
		// (samples = r·θ·φ, features = v∥), then chain partial fits.
		g := taskgraph.New()
		spec := ml.FoldSpec{
			Dims:        []string{"t", "r", "theta", "phi", "vpar"},
			SampleDims:  []string{"t", "r", "theta", "phi"},
			FeatureDims: []string{"vpar"},
		}
		var prev taskgraph.Key
		for step := 0; step < timesteps; step++ {
			var batchKeys []taskgraph.Key
			for b := 0; b < ranks; b++ {
				blockKey := va.BlockKey([]int{step, b, 0, 0, 0})
				fold := ml.AddFoldTask(g,
					taskgraph.Key(fmt.Sprintf("fold-%d-%d", step, b)),
					blockKey, spec, int64(nR*nTheta*nPhi*nVpar*8))
				batchKeys = append(batchKeys, fold)
			}
			stateKey := taskgraph.Key(fmt.Sprintf("state-%d", step))
			deps := append([]taskgraph.Key{}, batchKeys...)
			if prev != "" {
				deps = append([]taskgraph.Key{prev}, deps...)
			}
			hasPrev := prev != ""
			g.AddFn(stateKey, deps, func(in []any) (any, error) {
				var e *ml.IncrementalPCA
				first := 0
				if hasPrev {
					e = in[0].(*ml.IncrementalPCA).Clone()
					first = 1
				} else {
					e = ml.NewIncrementalPCA(components)
				}
				mats := make([]*ndarray.Array, 0, len(in)-first)
				for _, v := range in[first:] {
					mats = append(mats, v.(*ndarray.Array))
				}
				batch := ndarray.Concat(0, mats...)
				if err := e.PartialFit(batch); err != nil {
					return nil, err
				}
				return e, nil
			}, 1e-3)
			prev = stateKey
		}
		futs, err := d.Client().Submit(g, []taskgraph.Key{prev})
		if err != nil {
			log.Fatal(err)
		}
		vals, err := d.Client().Gather(futs)
		if err != nil {
			log.Fatal(err)
		}
		est = vals[0].(*ml.IncrementalPCA)
	}()

	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			b := core.NewBridge(core.BridgeConfig{
				Rank: rank, Cluster: cluster, Node: netsim.NodeID(4 + rank%2),
				HeartbeatInterval: math.Inf(1), Mode: core.ModeExternal,
			})
			if err := b.DeclareArray(va); err != nil {
				log.Fatal(err)
			}
			now, err := b.Init(0)
			if err != nil {
				log.Fatal(err)
			}
			for step := 0; step < timesteps; step++ {
				block := ndarray.New(1, nR, nTheta, nPhi, nVpar)
				for rr := 0; rr < nR; rr++ {
					for th := 0; th < nTheta; th++ {
						for ph := 0; ph < nPhi; ph++ {
							for v := 0; v < nVpar; v++ {
								block.Set(distribution(step, rank, rr, th, ph, v), 0, rr, th, ph, v)
							}
						}
					}
				}
				now, _, err = b.Publish("f5d", []int{step, rank, 0, 0, 0}, block, now+0.2)
				if err != nil {
					log.Fatal(err)
				}
			}
		}(r)
	}
	wg.Wait()

	total := 0.0
	for _, v := range est.Var {
		total += v
	}
	captured := 0.0
	for _, r := range est.ExplainedVarianceRatio {
		captured += r
	}
	full := timesteps * ranks * nR * nTheta * nPhi * nVpar
	compressed := components * (nVpar + timesteps*ranks*nR*nTheta*nPhi/nVpar) // components + coefficients (approx)
	fmt.Printf("5-D distribution function: %d samples × %d features over %d steps\n",
		timesteps*ranks*nR*nTheta*nPhi, nVpar, timesteps)
	fmt.Printf("incremental PCA (k=%d): explained variance ratios %.4f %.4f %.4f  (Σ %.2f%%)\n",
		components, est.ExplainedVarianceRatio[0], est.ExplainedVarianceRatio[1],
		est.ExplainedVarianceRatio[2], 100*captured)
	fmt.Printf("compression: %d values → ~%d (x%.0f smaller) at %.1f%% variance retained\n",
		full, compressed, float64(full)/float64(compressed), 100*captured)
}
