// Post hoc vs in transit: the paper's central comparison on one
// configuration. The same Heat2D + IPCA workflow runs twice — once
// writing chunked files to the shared parallel file system and analysing
// them afterwards with plain Dask, and once coupled in transit through
// deisa external tasks — and prints the side-by-side costs.
//
//	go run ./examples/posthoc-vs-intransit
package main

import (
	"fmt"
	"log"

	"deisago/internal/harness"
	"deisago/internal/ndarray"
)

func main() {
	base := harness.Config{
		Ranks:      16,
		Workers:    8,
		Timesteps:  10,
		BlockBytes: 128 << 20,
		Seed:       3,
	}

	run := func(sys harness.System) *harness.Result {
		cfg := base
		cfg.System = sys
		res, err := harness.Run(cfg)
		if err != nil {
			log.Fatalf("%s: %v", sys, err)
		}
		return res
	}

	post := run(harness.PostHocNewIPCA)
	intr := run(harness.DEISA3)

	fmt.Printf("Heat2D + IPCA, %d ranks, %d workers, %d steps, %d MiB/process\n\n",
		base.Ranks, base.Workers, base.Timesteps, base.BlockBytes>>20)
	fmt.Printf("%-34s %14s %14s\n", "", "post hoc", "in transit")
	row := func(label string, a, b float64, unit string) {
		fmt.Printf("%-34s %11.3f %s %11.3f %s\n", label, a, unit, b, unit)
	}
	row("simulation compute / iteration", post.SimStepMean, intr.SimStepMean, "s")
	row("coupling (write vs scatter) / it", post.CommMean, intr.CommMean, "s")
	row("per-process coupling bandwidth", post.SimBandwidthMiBps(), intr.SimBandwidthMiBps(), "MiB/s")
	row("analytics duration", post.AnalyticsTime, intr.AnalyticsTime, "s")
	row("coupling cost over run", post.SimCommCostCoreHours(), intr.SimCommCostCoreHours(), "core·h")
	row("analytics cost over run", post.AnalyticsCostCoreHours(), intr.AnalyticsCostCoreHours(), "core·h")
	fmt.Println()
	fmt.Printf("in transit is x%.1f cheaper on coupling and x%.1f faster on analytics\n",
		post.SimCommCostCoreHours()/intr.SimCommCostCoreHours(),
		post.AnalyticsTime/intr.AnalyticsTime)

	// Both computed the same (real) science:
	if ndarray.AllClose(post.Components, intr.Components, 1e-9) {
		fmt.Println("and both produced bit-identical PCA components ✓")
	} else {
		fmt.Println("WARNING: results differ between the two systems")
	}
}
