// Contracts: automatic data filtering between simulation and analytics.
//
// The analytics selects only a sub-region of the published virtual array
// with the [] operator; the contract is signed once, and every bridge
// then filters locally: blocks outside the selection are never shipped.
// This example shows the traffic saved.
//
//	go run ./examples/contracts
package main

import (
	"fmt"
	"log"
	"math"
	"sync"

	"deisago/internal/array"
	"deisago/internal/core"
	"deisago/internal/dask"
	"deisago/internal/ndarray"
	"deisago/internal/netsim"
	"deisago/internal/taskgraph"
)

const (
	ranks     = 8
	timesteps = 5
	blockX    = 16
	blockY    = 4
)

func runOnce(selectHalf bool) (sent, skipped int64, bytes int64) {
	fabric := netsim.New(netsim.DefaultConfig(), ranks+4)
	cluster := dask.NewCluster(fabric, dask.DefaultConfig(), 0,
		[]netsim.NodeID{2, 3})
	defer cluster.Close()

	va := &core.VirtualArray{
		Name:    "field",
		Size:    []int{timesteps, blockX, blockY * ranks},
		Subsize: []int{1, blockX, blockY},
		TimeDim: 0,
	}

	var wg sync.WaitGroup
	bridges := make([]*core.Bridge, ranks)
	for r := 0; r < ranks; r++ {
		bridges[r] = core.NewBridge(core.BridgeConfig{
			Rank: r, Cluster: cluster, Node: netsim.NodeID(4 + r%(ranks/2)),
			HeartbeatInterval: math.Inf(1), Mode: core.ModeExternal,
		})
		if err := bridges[r].DeclareArray(va); err != nil {
			log.Fatal(err)
		}
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		d := core.Connect(cluster, 1)
		set, err := d.GetDeisaArrays()
		if err != nil {
			log.Fatal(err)
		}
		da, err := set.Get("field")
		if err != nil {
			log.Fatal(err)
		}
		if selectHalf {
			// Only the lower half of the Y domain, all timesteps.
			da.Select(
				array.Range{Start: 0, Stop: timesteps},
				array.Range{Start: 0, Stop: blockX},
				array.Range{Start: 0, Stop: blockY * ranks / 2},
			)
		} else {
			da.SelectAll()
		}
		if _, err := set.ValidateContract(); err != nil {
			log.Fatal(err)
		}
		// Sum over exactly the selected blocks.
		g := taskgraph.New()
		g.AddFn("sum", da.Selection().Keys(), func(in []any) (any, error) {
			s := 0.0
			for _, v := range in {
				s += v.(*ndarray.Array).Sum()
			}
			return s, nil
		}, 1e-4)
		futs, err := d.Client().Submit(g, []taskgraph.Key{"sum"})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := d.Client().Gather(futs); err != nil {
			log.Fatal(err)
		}
	}()

	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			b := bridges[r]
			now, err := b.Init(0)
			if err != nil {
				log.Fatal(err)
			}
			for t := 0; t < timesteps; t++ {
				block := ndarray.New(1, blockX, blockY)
				block.Fill(1)
				now, _, err = b.Publish("field", []int{t, 0, r}, block, now+0.05)
				if err != nil {
					log.Fatal(err)
				}
			}
		}(r)
	}
	wg.Wait()

	for _, b := range bridges {
		s, k := b.Stats()
		sent += s
		skipped += k
	}
	_, moved := fabric.Transfers()
	return sent, skipped, moved
}

func main() {
	fullSent, fullSkipped, fullBytes := runOnce(false)
	fmt.Printf("select [...] (everything):  blocks sent=%d skipped=%d, fabric bytes=%.1f KiB\n",
		fullSent, fullSkipped, float64(fullBytes)/1024)
	halfSent, halfSkipped, halfBytes := runOnce(true)
	fmt.Printf("select lower half of Y:     blocks sent=%d skipped=%d, fabric bytes=%.1f KiB\n",
		halfSent, halfSkipped, float64(halfBytes)/1024)
	fmt.Printf("\ncontract filtering shipped %.0f%% of the blocks and saved %.0f%% of the traffic\n",
		100*float64(halfSent)/float64(fullSent),
		100*(1-float64(halfBytes)/float64(fullBytes)))
}
