// Multitenant: three weighted jobs share one deisa platform.
//
// Each job is a full Heat2D + bridge + incremental-PCA pipeline in its
// own tenant namespace ("<name>/" key prefix) with its own fair-share
// weight. The demo runs the mixed workload three ways — fully
// interleaved, strictly serial (admission cap 1), and with one tenant
// cancelled mid-run by a killjob fault — and shows that every tenant's
// analytics fingerprint depends only on its own job spec: identical
// across interleavings, and identical for the survivors of the kill.
//
//	go run ./examples/multitenant
package main

import (
	"fmt"
	"log"

	"deisago/internal/chaos"
	"deisago/internal/harness"
)

func jobs() []harness.JobSpec {
	return []harness.JobSpec{
		{Name: "climate", Weight: 1, Ranks: 2, Timesteps: 4, BlockBytes: 1 << 20},
		{Name: "fusion", Weight: 2, Ranks: 2, Timesteps: 4, BlockBytes: 1 << 20},
		{Name: "urgent", Weight: 8, Ranks: 1, Timesteps: 3, BlockBytes: 1 << 20},
	}
}

func run(label string, cfg harness.MultiJobConfig) *harness.MultiJobResult {
	res, err := harness.RunMultiJob(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("--- %s (makespan %.4fs, Jain %.4f, admitted %d, peak queue %d)\n",
		label, res.Makespan, res.Jain, res.Admission.Admitted, res.Admission.MaxQueue)
	for _, j := range res.Jobs {
		killed := ""
		if j.Killed {
			killed = fmt.Sprintf("  [killed @%d: %d blocks filtered]", j.KilledStep, j.BlocksSkipped)
		}
		fmt.Printf("%-8s w=%g  sent=%2d  analytics=%.4fs  fp=%s%s\n",
			j.Name, j.Weight, j.BlocksSent, j.AnalyticsTime, j.Fingerprint[:16], killed)
	}
	return res
}

func main() {
	interleaved := run("interleaved", harness.MultiJobConfig{
		Jobs: jobs(), Workers: 3, Seed: 7,
	})

	serial := run("serial (admission MaxConcurrent=1)", harness.MultiJobConfig{
		Jobs: jobs(), Workers: 3, Seed: 7, MaxConcurrent: 1,
	})

	plan, err := chaos.ParsePlan("killjob:fusion@2")
	if err != nil {
		log.Fatal(err)
	}
	chaotic := run("killjob:fusion@2", harness.MultiJobConfig{
		Jobs: jobs(), Workers: 3, Seed: 7, ChaosPlan: plan,
	})

	for _, j := range interleaved.Jobs {
		if s := serial.Job(j.Name); s.Fingerprint != j.Fingerprint {
			log.Fatalf("%s: serial fingerprint diverged", j.Name)
		}
		if j.Name == "fusion" {
			continue // the cancelled tenant legitimately differs
		}
		if c := chaotic.Job(j.Name); c.Fingerprint != j.Fingerprint {
			log.Fatalf("%s: survivor fingerprint diverged under killjob", j.Name)
		}
	}
	fmt.Println("--- fingerprints: serial == interleaved; killjob survivors unchanged")
}
